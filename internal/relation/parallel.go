package relation

import (
	"slices"

	"repro/internal/exec"
	"repro/internal/hypergraph"
	"repro/internal/keys"
	"repro/internal/semiring"
)

// sortByKey sorts a group permutation by packed key (keys are unique, so
// no tiebreak is needed).
func sortByKey(order []int32, gkeys []uint64) {
	slices.SortFunc(order, func(x, y int32) int {
		if gkeys[x] < gkeys[y] {
			return -1
		}
		if gkeys[x] > gkeys[y] {
			return 1
		}
		return 0
	})
}

// Parallel partitioned variants of the packed-key hash join and of
// EliminateVar's packed grouping pass. Both partition tuples with
// keys.Chunk on the operation's key columns — the same hash the protocol
// layer uses to split converge-cast streams across Steiner trees — run
// the partitions on the exec worker pool, and merge the per-partition
// outputs in partition order through a single Build.
//
// Bit-identical guarantee: equal keys land in the same partition, and
// each partition scans its tuple list in ascending input order, so every
// duplicate group reaches Build's ⊕-merge in exactly the order the
// sequential operator produces. Build then sorts by key, making the
// final layout independent of the partitioning altogether. The
// equivalence tests in parallel_test.go pin this per semiring.

// parallelMinTuples is the size threshold below which partitioned
// execution is never worth the fan-out overhead.
const parallelMinTuples = 1 << 14

// maxParts caps the partition count (chunk ids must also fit the uint8
// scratch used by partitionByKey).
const maxParts = 64

// parallelParts returns the partition count for an operation touching n
// tuples: 1 (sequential) below the size threshold or when the default
// pool is single-worker.
func parallelParts(n int) int {
	if n < parallelMinTuples {
		return 1
	}
	w := exec.Workers()
	if w <= 1 {
		return 1
	}
	if w > maxParts {
		w = maxParts
	}
	return w
}

// markDivisible brackets a sequential kernel region in exec.Divisible
// when its input size n crosses the partition threshold — i.e. exactly
// when a multi-worker run would have dispatched the region's partitioned
// twin. Callers pass n = 0 for shapes that have no parallel twin. The
// bracket feeds exec.ForestShaped's work/div accounting (the intra-node
// partitioning model of exec.MakespanShaped); it never changes results.
func markDivisible(n int, f func()) {
	if n >= parallelMinTuples {
		exec.Divisible(maxParts, f)
		return
	}
	f()
}

// partitionByKey buckets tuple indices of r by keys.Chunk of the given
// key columns, returning for each partition the ascending tuple indices
// and, aligned with them, the tuples' packed keys (computed once here;
// the join/grouping passes reuse them instead of re-packing). The key
// computation fans out across the pool in blocks; the bucket fill is one
// sequential counting pass, so every bucket lists its indices in
// ascending order.
func partitionByKey[T any](pool *exec.Pool, r *Relation[T], cols []int, parts int) ([][]int32, [][]uint64) {
	n := r.Len()
	nc := len(cols)
	packed := make([]uint64, n)
	chunk := make([]uint8, n)
	nblocks := pool.Workers()
	if nblocks > parts {
		nblocks = parts
	}
	if nblocks < 1 {
		nblocks = 1
	}
	blockSize := (n + nblocks - 1) / nblocks
	pool.Map(nblocks, func(b int) {
		lo, hi := b*blockSize, (b+1)*blockSize
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			k := keys.PackCols(r.Tuple(i), cols)
			packed[i] = k
			chunk[i] = uint8(keys.Chunk(k, nc, parts))
		}
	})
	counts := make([]int, parts)
	for _, c := range chunk {
		counts[c]++
	}
	idx := make([][]int32, parts)
	pkeys := make([][]uint64, parts)
	for pi := range idx {
		idx[pi] = make([]int32, 0, counts[pi])
		pkeys[pi] = make([]uint64, 0, counts[pi])
	}
	for i, c := range chunk {
		idx[c] = append(idx[c], int32(i))
		pkeys[c] = append(pkeys[c], packed[i])
	}
	return idx, pkeys
}

// joinHashParallel is joinHash partitioned on the shared-column key
// (1 ≤ len(shared) ≤ keys.MaxPacked). Matching tuples always share a
// partition, so partitions join independently; outputs concatenate in
// partition order into one Build.
func joinHashParallel[T any](s semiring.Semiring[T], a, b *Relation[T], shared []int, parts int) *Relation[T] {
	outSchema := hypergraph.UnionSorted(a.schema, b.schema)
	srcs := outputSrcs(outSchema, a.schema, b.schema)
	aCols, _ := columnsOf(a.schema, shared)
	bCols, _ := columnsOf(b.schema, shared)
	pool := exec.Default()

	aPart, aKeys := partitionByKey(pool, a, aCols, parts)
	bPart, bKeys := partitionByKey(pool, b, bCols, parts)

	outRows, outVals := collectChunks[T](parts, len(outSchema), func(pi int) ([]int32, []T) {
		ai, bi := aPart[pi], bPart[pi]
		if len(ai) == 0 || len(bi) == 0 {
			return nil, nil
		}
		// Index this partition's b-tuples: intrusive chains over bucket
		// positions, built back-to-front so chains ascend in b order.
		head := make(map[uint64]int32, len(bi))
		next := make([]int32, len(bi))
		for x := len(bi) - 1; x >= 0; x-- {
			k := bKeys[pi][x]
			if h, ok := head[k]; ok {
				next[x] = h
			} else {
				next[x] = -1
			}
			head[k] = int32(x)
		}
		var rows []int32
		var vals []T
		scratch := make([]int32, len(outSchema))
		for xa, ia := range ai {
			h, ok := head[aKeys[pi][xa]]
			if !ok {
				continue
			}
			ta := a.Tuple(int(ia))
			for x := h; x >= 0; x = next[x] {
				ib := int(bi[x])
				v := s.Mul(a.vals[ia], b.vals[ib])
				if s.IsZero(v) {
					continue
				}
				tb := b.Tuple(ib)
				for k, sc := range srcs {
					if sc.fromA {
						scratch[k] = ta[sc.col]
					} else {
						scratch[k] = tb[sc.col]
					}
				}
				rows = append(rows, scratch...)
				vals = append(vals, v)
			}
		}
		return rows, vals
	})

	bld := NewBuilderHint(s, outSchema, len(outVals))
	bld.rows = append(bld.rows, outRows...)
	bld.vals = append(bld.vals, outVals...)
	return bld.Build()
}

// mergeCuts picks the chunk boundaries of a range-split sorted merge
// over the shared p-column prefix: parts−1 candidate keys sampled at
// even positions of a, each mapped to its lower bound in both operands
// (gallopShared from 0 is exactly that search). A cut is the first
// occurrence of its key, so no key group straddles a chunk, and
// matching groups land in the same chunk on both sides; cuts are
// non-decreasing because the sampled keys are.
func mergeCuts[T any](a, b *Relation[T], p, parts int) (aCut, bCut []int) {
	na, nb := a.Len(), b.Len()
	aAr, bAr := len(a.schema), len(b.schema)
	aCut = make([]int, parts+1)
	bCut = make([]int, parts+1)
	for k := 1; k < parts; k++ {
		pos := na * k / parts
		key := a.rows[pos*aAr : pos*aAr+p]
		aCut[k] = gallopShared(a.rows, aAr, na, 0, key, p)
		bCut[k] = gallopShared(b.rows, bAr, nb, 0, key, p)
	}
	aCut[parts], bCut[parts] = na, nb
	return aCut, bCut
}

// collectChunks runs gen(i) for every chunk on the pool and
// concatenates the per-chunk outputs in chunk order — the shared
// discipline of every partitioned operator: chunk order is the
// sequential generation order, so concatenation reproduces the
// sequential byte sequence.
func collectChunks[T any](parts, width int, gen func(i int) ([]int32, []T)) ([]int32, []T) {
	type chunkOut struct {
		rows []int32
		vals []T
	}
	outs := make([]chunkOut, parts)
	exec.Default().Map(parts, func(i int) {
		r, v := gen(i)
		outs[i] = chunkOut{r, v}
	})
	total := 0
	for _, o := range outs {
		total += len(o.vals)
	}
	rows := make([]int32, 0, total*width)
	vals := make([]T, 0, total)
	for _, o := range outs {
		rows = append(rows, o.rows...)
		vals = append(vals, o.vals...)
	}
	return rows, vals
}

// joinMergeParallel is the range-split sorted-merge join (p ≥ 1 shared
// prefix columns): chunk boundaries come from mergeCuts, each chunk runs
// the sequential merge core over its row ranges on the pool, and chunk
// outputs concatenate in chunk order — exactly the sequential generation
// sequence (ascending shared key), so the ordered orientation emits the
// final layout directly and the unordered one feeds the Builder's
// ⊕-merge in the sequential duplicate order. Bit-identical either way.
func joinMergeParallel[T any](s semiring.Semiring[T], a, b *Relation[T], p, parts int) *Relation[T] {
	if a.Len() == 0 || b.Len() == 0 {
		return joinMerge(s, a, b, p)
	}
	outSchema := hypergraph.UnionSorted(a.schema, b.schema)
	srcs := outputSrcs(outSchema, a.schema, b.schema)
	aCut, bCut := mergeCuts(a, b, p, parts)
	rows, vals := collectChunks[T](parts, len(outSchema), func(i int) ([]int32, []T) {
		if aCut[i] == aCut[i+1] || bCut[i] == bCut[i+1] {
			return nil, nil
		}
		return joinMergeRange(s, a, b, p, srcs, len(outSchema), aCut[i], aCut[i+1], bCut[i], bCut[i+1])
	})
	return mergeEmit(s, outSchema, restBefore(a.schema, b.schema, p), rows, vals)
}

// semijoinMergeParallel is the range-split twin of semijoinMerge: the
// same mergeCuts boundaries, each chunk filtering its a-range against
// its b-range; chunk outputs concatenate into a's global row order.
func semijoinMergeParallel[T any](a, b *Relation[T], p, parts int) *Relation[T] {
	if a.Len() == 0 || b.Len() == 0 {
		return semijoinMerge(a, b, p)
	}
	aCut, bCut := mergeCuts(a, b, p, parts)
	rows, vals := collectChunks[T](parts, len(a.schema), func(i int) ([]int32, []T) {
		if aCut[i] == aCut[i+1] || bCut[i] == bCut[i+1] {
			return nil, nil
		}
		return semijoinMergeRange(a, b, p, aCut[i], aCut[i+1], bCut[i], bCut[i+1])
	})
	return fromSorted(a.schema, rows, vals)
}

// semijoinHashParallel is semijoinHash partitioned on the shared-column
// key (1 ≤ len(shared) ≤ keys.MaxPacked): b's key set is built as
// per-partition sets in parallel, then contiguous blocks of a probe the
// (read-only) sets and concatenate in block order — exactly the
// sequential filter's output sequence, since a block's survivors keep
// a's ascending row order.
func semijoinHashParallel[T any](a, b *Relation[T], shared []int, parts int) *Relation[T] {
	aCols, _ := columnsOf(a.schema, shared)
	bCols, _ := columnsOf(b.schema, shared)
	pool := exec.Default()
	nc := len(shared)

	bPart, bKeys := partitionByKey(pool, b, bCols, parts)
	sets := make([]map[uint64]struct{}, parts)
	pool.Map(parts, func(pi int) {
		if len(bPart[pi]) == 0 {
			return
		}
		m := make(map[uint64]struct{}, len(bPart[pi]))
		for _, k := range bKeys[pi] {
			m[k] = struct{}{}
		}
		sets[pi] = m
	})

	na := a.Len()
	rows, vals := collectChunks[T](parts, len(a.schema), func(bi int) ([]int32, []T) {
		lo, hi := na*bi/parts, na*(bi+1)/parts
		var rows []int32
		var vals []T
		for i := lo; i < hi; i++ {
			k := keys.PackCols(a.Tuple(i), aCols)
			set := sets[keys.Chunk(k, nc, parts)]
			if set == nil {
				continue
			}
			if _, ok := set[k]; ok {
				rows = append(rows, a.Tuple(i)...)
				vals = append(vals, a.vals[i])
			}
		}
		return rows, vals
	})
	return &Relation[T]{schema: a.schema, rows: rows, vals: vals}
}

// prefixCuts picks the chunk boundaries of a range-split contiguous-run
// reduction over the leading p columns of r's sorted rows: parts−1
// candidate keys sampled at even positions, each mapped to the first row
// of its group (gallopShared from 0 is exactly that lower bound), so no
// group straddles a chunk and chunk outputs concatenated in chunk order
// reproduce the sequential group sequence. Cuts are non-decreasing
// because the sampled keys are.
func prefixCuts[T any](r *Relation[T], p, parts int) []int {
	n, a := r.Len(), len(r.schema)
	cuts := make([]int, parts+1)
	for k := 1; k < parts; k++ {
		pos := n * k / parts
		key := r.rows[pos*a : pos*a+p]
		cuts[k] = gallopShared(r.rows, a, n, 0, key, p)
	}
	cuts[parts] = n
	return cuts
}

// projectPrefixRange reduces the contiguous groups of r[lo:hi) onto the
// leading p columns — the shared core of Project's prefix fast path and
// of each chunk of its range-split twin. Within a group the ⊕-order is
// the ascending row order, exactly the sequential fold.
func projectPrefixRange[T any](s semiring.Semiring[T], r *Relation[T], p, lo, hi int) ([]int32, []T) {
	a := len(r.schema)
	var rows []int32
	var vals []T
	for i := lo; i < hi; {
		j := i + 1
		v := r.vals[i]
		for j < hi && compareShared(r.rows[i*a:], r.rows[j*a:], p) == 0 {
			v = s.Add(v, r.vals[j])
			j++
		}
		if !s.IsZero(v) {
			rows = append(rows, r.rows[i*a:i*a+p]...)
			vals = append(vals, v)
		}
		i = j
	}
	return rows, vals
}

// projectPrefixParallel is the range-split twin of Project's prefix fast
// path (p ≥ 1 kept leading columns): prefixCuts aligns chunk boundaries
// to group starts, chunks reduce independently on the pool, and outputs
// concatenate in chunk order — the sequential group sequence, hence
// bit-identical by construction.
func projectPrefixParallel[T any](s semiring.Semiring[T], r *Relation[T], schema []int, p, parts int) *Relation[T] {
	if r.Len() == 0 {
		return fromSorted[T](schema, nil, nil)
	}
	cuts := prefixCuts(r, p, parts)
	rows, vals := collectChunks[T](parts, p, func(i int) ([]int32, []T) {
		if cuts[i] == cuts[i+1] {
			return nil, nil
		}
		return projectPrefixRange(s, r, p, cuts[i], cuts[i+1])
	})
	return fromSorted(schema, rows, vals)
}

// eliminatePrefixRange folds variable-eliminating groups of r[lo:hi)
// grouped on the leading p columns with the per-variable operator — the
// shared core of EliminateVar's innermost fast path and of each chunk of
// its range-split twin. The product-aggregate zero-annihilation rule
// (a group survives only with domSize listed tuples) applies per group,
// so it is chunk-local once groups never straddle a cut.
func eliminatePrefixRange[T any](s semiring.Semiring[T], r *Relation[T], op semiring.Op[T],
	domSize, p, lo, hi int) ([]int32, []T) {
	a := len(r.schema)
	var rows []int32
	var vals []T
	for i := lo; i < hi; {
		j := i + 1
		acc := op.Combine(op.Identity(), r.vals[i])
		for j < hi && compareShared(r.rows[i*a:], r.rows[j*a:], p) == 0 {
			acc = op.Combine(acc, r.vals[j])
			j++
		}
		if !(op.IsProduct() && j-i < domSize) && !s.IsZero(acc) {
			rows = append(rows, r.rows[i*a:i*a+p]...)
			vals = append(vals, acc)
		}
		i = j
	}
	return rows, vals
}

// eliminatePrefixParallel is the range-split twin of EliminateVar's
// innermost-variable fast path (p ≥ 1 remaining leading columns): same
// prefixCuts discipline as projectPrefixParallel.
func eliminatePrefixParallel[T any](s semiring.Semiring[T], r *Relation[T], rest []int,
	op semiring.Op[T], domSize, p, parts int) *Relation[T] {
	if r.Len() == 0 {
		return fromSorted[T](rest, nil, nil)
	}
	cuts := prefixCuts(r, p, parts)
	rows, vals := collectChunks[T](parts, p, func(i int) ([]int32, []T) {
		if cuts[i] == cuts[i+1] {
			return nil, nil
		}
		return eliminatePrefixRange(s, r, op, domSize, p, cuts[i], cuts[i+1])
	})
	return fromSorted(rest, rows, vals)
}

// parallelSortFunc sorts s by cmp with concurrent sub-sorts followed by
// rounds of pairwise parallel merges (ping-pong between s and one
// scratch buffer). cmp must induce a strict total order — the Builder
// comparators tiebreak on input index — so the sorted permutation is
// unique and the result is bit-identical to a sequential slices.SortFunc.
func parallelSortFunc[E any](s []E, cmp func(a, b E) int, parts int) {
	n := len(s)
	if parts > n {
		parts = n
	}
	if parts <= 1 {
		slices.SortFunc(s, cmp)
		return
	}
	pool := exec.Default()
	bounds := make([]int, parts+1)
	for i := range bounds {
		bounds[i] = n * i / parts
	}
	pool.Map(parts, func(i int) {
		slices.SortFunc(s[bounds[i]:bounds[i+1]], cmp)
	})
	buf := make([]E, n)
	src, dst := s, buf
	for len(bounds) > 2 {
		nseg := len(bounds) - 1
		pool.Map(nseg/2, func(i int) {
			lo, mid, hi := bounds[2*i], bounds[2*i+1], bounds[2*i+2]
			mergeSorted(dst[lo:hi], src[lo:mid], src[mid:hi], cmp)
		})
		if nseg%2 == 1 { // odd segment out: carry it to the next round
			copy(dst[bounds[nseg-1]:bounds[nseg]], src[bounds[nseg-1]:bounds[nseg]])
		}
		nb := bounds[:0:0]
		for i := 0; i < len(bounds); i += 2 {
			nb = append(nb, bounds[i])
		}
		if nb[len(nb)-1] != n {
			nb = append(nb, n)
		}
		bounds = nb
		src, dst = dst, src
	}
	if n > 0 && &src[0] != &s[0] {
		copy(s, src)
	}
}

// mergeSorted merges two sorted runs into out (len(out) = len(a)+len(b)),
// taking from a on ties — immaterial under a strict total order but kept
// for stability.
func mergeSorted[E any](out, a, b []E, cmp func(x, y E) int) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if cmp(a[i], b[j]) <= 0 {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
		k++
	}
	k += copy(out[k:], a[i:])
	copy(out[k:], b[j:])
}

// eliminatePackedParallel is EliminateVar's packed grouping pass
// partitioned on the remaining-column key (1 ≤ len(restCols) ≤
// keys.MaxPacked). A group's tuples always share a partition, so groups
// aggregate independently; the final emit sorts the (globally unique)
// group keys, matching the sequential layout exactly.
func eliminatePackedParallel[T any](s semiring.Semiring[T], r *Relation[T], rest []int, restCols []int,
	op semiring.Op[T], domSize, parts int) *Relation[T] {
	p := len(restCols)
	pool := exec.Default()
	idxPart, keyPart := partitionByKey(pool, r, restCols, parts)

	type grpOut struct {
		keys   []uint64
		vals   []T
		counts []int32
	}
	outs := make([]grpOut, parts)
	pool.Map(parts, func(pi int) {
		idx := idxPart[pi]
		if len(idx) == 0 {
			return
		}
		groupOf := make(map[uint64]int32, len(idx))
		var gkeys []uint64
		var gvals []T
		var gcounts []int32
		for x, i := range idx {
			k := keyPart[pi][x]
			g, ok := groupOf[k]
			if !ok {
				g = int32(len(gkeys))
				groupOf[k] = g
				gkeys = append(gkeys, k)
				gvals = append(gvals, op.Identity())
				gcounts = append(gcounts, 0)
			}
			gvals[g] = op.Combine(gvals[g], r.vals[i])
			gcounts[g]++
		}
		outs[pi] = grpOut{gkeys, gvals, gcounts}
	})

	ng := 0
	for _, o := range outs {
		ng += len(o.keys)
	}
	gkeys := make([]uint64, 0, ng)
	gvals := make([]T, 0, ng)
	gcounts := make([]int32, 0, ng)
	for _, o := range outs {
		gkeys = append(gkeys, o.keys...)
		gvals = append(gvals, o.vals...)
		gcounts = append(gcounts, o.counts...)
	}
	order := make([]int32, ng)
	for i := range order {
		order[i] = int32(i)
	}
	sortByKey(order, gkeys)
	rows := make([]int32, 0, ng*p)
	vals := make([]T, 0, ng)
	for _, g := range order {
		if op.IsProduct() && int(gcounts[g]) < domSize {
			continue // an unlisted zero annihilates the product aggregate
		}
		if s.IsZero(gvals[g]) {
			continue
		}
		switch p {
		case 1:
			rows = append(rows, keys.Unpack1(gkeys[g]))
		case 2:
			x, y := keys.Unpack2(gkeys[g])
			rows = append(rows, x, y)
		}
		vals = append(vals, gvals[g])
	}
	return fromSorted(rest, rows, vals)
}
