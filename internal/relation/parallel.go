package relation

import (
	"slices"

	"repro/internal/exec"
	"repro/internal/hypergraph"
	"repro/internal/keys"
	"repro/internal/semiring"
)

// sortByKey sorts a group permutation by packed key (keys are unique, so
// no tiebreak is needed).
func sortByKey(order []int32, gkeys []uint64) {
	slices.SortFunc(order, func(x, y int32) int {
		if gkeys[x] < gkeys[y] {
			return -1
		}
		if gkeys[x] > gkeys[y] {
			return 1
		}
		return 0
	})
}

// Parallel partitioned variants of the packed-key hash join and of
// EliminateVar's packed grouping pass. Both partition tuples with
// keys.Chunk on the operation's key columns — the same hash the protocol
// layer uses to split converge-cast streams across Steiner trees — run
// the partitions on the exec worker pool, and merge the per-partition
// outputs in partition order through a single Build.
//
// Bit-identical guarantee: equal keys land in the same partition, and
// each partition scans its tuple list in ascending input order, so every
// duplicate group reaches Build's ⊕-merge in exactly the order the
// sequential operator produces. Build then sorts by key, making the
// final layout independent of the partitioning altogether. The
// equivalence tests in parallel_test.go pin this per semiring.

// parallelMinTuples is the size threshold below which partitioned
// execution is never worth the fan-out overhead.
const parallelMinTuples = 1 << 14

// maxParts caps the partition count (chunk ids must also fit the uint8
// scratch used by partitionByKey).
const maxParts = 64

// parallelParts returns the partition count for an operation touching n
// tuples: 1 (sequential) below the size threshold or when the default
// pool is single-worker.
func parallelParts(n int) int {
	if n < parallelMinTuples {
		return 1
	}
	w := exec.Workers()
	if w <= 1 {
		return 1
	}
	if w > maxParts {
		w = maxParts
	}
	return w
}

// partitionByKey buckets tuple indices of r by keys.Chunk of the given
// key columns, returning for each partition the ascending tuple indices
// and, aligned with them, the tuples' packed keys (computed once here;
// the join/grouping passes reuse them instead of re-packing). The key
// computation fans out across the pool in blocks; the bucket fill is one
// sequential counting pass, so every bucket lists its indices in
// ascending order.
func partitionByKey[T any](pool *exec.Pool, r *Relation[T], cols []int, parts int) ([][]int32, [][]uint64) {
	n := r.Len()
	nc := len(cols)
	packed := make([]uint64, n)
	chunk := make([]uint8, n)
	nblocks := pool.Workers()
	if nblocks > parts {
		nblocks = parts
	}
	if nblocks < 1 {
		nblocks = 1
	}
	blockSize := (n + nblocks - 1) / nblocks
	pool.Map(nblocks, func(b int) {
		lo, hi := b*blockSize, (b+1)*blockSize
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			k := keys.PackCols(r.Tuple(i), cols)
			packed[i] = k
			chunk[i] = uint8(keys.Chunk(k, nc, parts))
		}
	})
	counts := make([]int, parts)
	for _, c := range chunk {
		counts[c]++
	}
	idx := make([][]int32, parts)
	pkeys := make([][]uint64, parts)
	for pi := range idx {
		idx[pi] = make([]int32, 0, counts[pi])
		pkeys[pi] = make([]uint64, 0, counts[pi])
	}
	for i, c := range chunk {
		idx[c] = append(idx[c], int32(i))
		pkeys[c] = append(pkeys[c], packed[i])
	}
	return idx, pkeys
}

// joinHashParallel is joinHash partitioned on the shared-column key
// (1 ≤ len(shared) ≤ keys.MaxPacked). Matching tuples always share a
// partition, so partitions join independently; outputs concatenate in
// partition order into one Build.
func joinHashParallel[T any](s semiring.Semiring[T], a, b *Relation[T], shared []int, parts int) *Relation[T] {
	outSchema := hypergraph.UnionSorted(a.schema, b.schema)
	srcs := outputSrcs(outSchema, a.schema, b.schema)
	aCols, _ := columnsOf(a.schema, shared)
	bCols, _ := columnsOf(b.schema, shared)
	pool := exec.Default()

	aPart, aKeys := partitionByKey(pool, a, aCols, parts)
	bPart, bKeys := partitionByKey(pool, b, bCols, parts)

	type chunkOut struct {
		rows []int32
		vals []T
	}
	outs := make([]chunkOut, parts)
	pool.Map(parts, func(pi int) {
		ai, bi := aPart[pi], bPart[pi]
		if len(ai) == 0 || len(bi) == 0 {
			return
		}
		// Index this partition's b-tuples: intrusive chains over bucket
		// positions, built back-to-front so chains ascend in b order.
		head := make(map[uint64]int32, len(bi))
		next := make([]int32, len(bi))
		for x := len(bi) - 1; x >= 0; x-- {
			k := bKeys[pi][x]
			if h, ok := head[k]; ok {
				next[x] = h
			} else {
				next[x] = -1
			}
			head[k] = int32(x)
		}
		var rows []int32
		var vals []T
		scratch := make([]int32, len(outSchema))
		for xa, ia := range ai {
			h, ok := head[aKeys[pi][xa]]
			if !ok {
				continue
			}
			ta := a.Tuple(int(ia))
			for x := h; x >= 0; x = next[x] {
				ib := int(bi[x])
				v := s.Mul(a.vals[ia], b.vals[ib])
				if s.IsZero(v) {
					continue
				}
				tb := b.Tuple(ib)
				for k, sc := range srcs {
					if sc.fromA {
						scratch[k] = ta[sc.col]
					} else {
						scratch[k] = tb[sc.col]
					}
				}
				rows = append(rows, scratch...)
				vals = append(vals, v)
			}
		}
		outs[pi] = chunkOut{rows, vals}
	})

	total := 0
	for _, o := range outs {
		total += len(o.vals)
	}
	bld := NewBuilderHint(s, outSchema, total)
	for _, o := range outs {
		bld.rows = append(bld.rows, o.rows...)
		bld.vals = append(bld.vals, o.vals...)
	}
	return bld.Build()
}

// eliminatePackedParallel is EliminateVar's packed grouping pass
// partitioned on the remaining-column key (1 ≤ len(restCols) ≤
// keys.MaxPacked). A group's tuples always share a partition, so groups
// aggregate independently; the final emit sorts the (globally unique)
// group keys, matching the sequential layout exactly.
func eliminatePackedParallel[T any](s semiring.Semiring[T], r *Relation[T], rest []int, restCols []int,
	op semiring.Op[T], domSize, parts int) *Relation[T] {
	p := len(restCols)
	pool := exec.Default()
	idxPart, keyPart := partitionByKey(pool, r, restCols, parts)

	type grpOut struct {
		keys   []uint64
		vals   []T
		counts []int32
	}
	outs := make([]grpOut, parts)
	pool.Map(parts, func(pi int) {
		idx := idxPart[pi]
		if len(idx) == 0 {
			return
		}
		groupOf := make(map[uint64]int32, len(idx))
		var gkeys []uint64
		var gvals []T
		var gcounts []int32
		for x, i := range idx {
			k := keyPart[pi][x]
			g, ok := groupOf[k]
			if !ok {
				g = int32(len(gkeys))
				groupOf[k] = g
				gkeys = append(gkeys, k)
				gvals = append(gvals, op.Identity())
				gcounts = append(gcounts, 0)
			}
			gvals[g] = op.Combine(gvals[g], r.vals[i])
			gcounts[g]++
		}
		outs[pi] = grpOut{gkeys, gvals, gcounts}
	})

	ng := 0
	for _, o := range outs {
		ng += len(o.keys)
	}
	gkeys := make([]uint64, 0, ng)
	gvals := make([]T, 0, ng)
	gcounts := make([]int32, 0, ng)
	for _, o := range outs {
		gkeys = append(gkeys, o.keys...)
		gvals = append(gvals, o.vals...)
		gcounts = append(gcounts, o.counts...)
	}
	order := make([]int32, ng)
	for i := range order {
		order[i] = int32(i)
	}
	sortByKey(order, gkeys)
	rows := make([]int32, 0, ng*p)
	vals := make([]T, 0, ng)
	for _, g := range order {
		if op.IsProduct() && int(gcounts[g]) < domSize {
			continue // an unlisted zero annihilates the product aggregate
		}
		if s.IsZero(gvals[g]) {
			continue
		}
		switch p {
		case 1:
			rows = append(rows, keys.Unpack1(gkeys[g]))
		case 2:
			x, y := keys.Unpack2(gkeys[g])
			rows = append(rows, x, y)
		}
		vals = append(vals, gvals[g])
	}
	return fromSorted(rest, rows, vals)
}
