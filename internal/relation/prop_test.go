package relation

import (
	"bytes"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/exec"
	"repro/internal/semiring"
)

// Randomized parallel≡sequential equivalence harness.
//
// Every parallel kernel in this package has a sequential twin, and the
// exec-layer contract says the pair must be BIT-identical — same schema,
// same row buffer, same value bytes — at every worker count, partition
// count, and input shape. This file is the reusable harness enforcing
// that: a grid of adversarial key distributions (duplicate-heavy,
// all-equal, one giant group, alternating runs, skewed) × input sizes
// (including empty and singleton) × semirings (Boolean, counting,
// sum-product over floats — whose non-associativity under reordering
// makes bit-identity equivalent to "the parallel path preserved the
// exact sequential ⊕-order" — and min-plus) × partition counts, driven
// through each kernel pair directly plus through the public dispatchers
// at exec.SetWorkers 1/2/8. `make test-workers` re-runs the whole suite
// under those worker counts process-wide (FAQ_WORKERS).

// keyDist generates the shared-key column values that decide group
// boundaries — the axis parallel range-splitting can get wrong.
type keyDist struct {
	name string
	key  func(r *rand.Rand, i, n int) int
}

var keyDists = []keyDist{
	{"uniform-dense", func(r *rand.Rand, i, n int) int { return r.Intn(8) }},
	{"uniform-sparse", func(r *rand.Rand, i, n int) int { return r.Intn(4*n + 8) }},
	{"all-equal", func(r *rand.Rand, i, n int) int { return 7 }},
	{"one-giant-group", func(r *rand.Rand, i, n int) int {
		if r.Intn(10) > 0 {
			return 3
		}
		return 100 + r.Intn(50)
	}},
	{"alternating-runs", func(r *rand.Rand, i, n int) int {
		if i%2 == 0 {
			return 1
		}
		return 2 + i%29
	}},
	{"zipf-skew", func(r *rand.Rand, i, n int) int { return r.Intn(1 << uint(1+r.Intn(9))) }},
	{"sorted-blocks", func(r *rand.Rand, i, n int) int { return i / 4 }},
}

// propSizes includes the empty and singleton edge cases alongside sizes
// that produce multiple non-trivial chunks at every partition count.
var propSizes = []int{0, 1, 2, 7, 63, 200}

var propParts = []int{2, 3, 8}

// randRelDist builds a relation whose first p columns (the shared join
// prefix) follow dist and whose remaining columns are dense uniform (to
// breed duplicate tuples for the Builder's ⊕-merge).
func randRelDist[T any](s semiring.Semiring[T], r *rand.Rand, schema []int, n, p int,
	dist keyDist, val func(*rand.Rand) T) *Relation[T] {
	b := NewBuilder(s, schema)
	tuple := make([]int, len(schema))
	for i := 0; i < n; i++ {
		for j := range tuple {
			if j < p {
				tuple[j] = dist.key(r, i, n)
			} else {
				tuple[j] = r.Intn(6)
			}
		}
		b.Add(tuple, val(r))
	}
	return b.Build()
}

// mergePairs are the schema shapes dispatching to the sorted-merge path:
// ordered emission, unordered (Builder) emission, and a 2-column prefix.
var mergePairs = []struct {
	name string
	a, b []int
	p    int
}{
	{"ordered-p1", []int{0, 1}, []int{0, 2}, 1},
	{"unordered-p1", []int{0, 3}, []int{0, 2}, 1},
	{"ordered-p2", []int{0, 1, 2}, []int{0, 1, 3}, 2},
	{"contained-p1", []int{0, 1}, []int{0}, 1},
}

// hashPairs dispatch to the packed-key hash path (shared non-prefix).
var hashPairs = []struct {
	name string
	a, b []int
}{
	{"hash-1shared", []int{0, 1}, []int{1, 2}},
	{"hash-2shared", []int{0, 2, 3}, []int{1, 2, 3}},
	{"hash-contained", []int{0, 1, 2}, []int{2}},
}

func checkParallelEquivalence[T comparable](t *testing.T, s semiring.Semiring[T], val func(*rand.Rand) T, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	for _, dist := range keyDists {
		for _, na := range propSizes {
			nb := propSizes[r.Intn(len(propSizes))]
			for _, pair := range mergePairs {
				a := randRelDist(s, r, pair.a, na, pair.p, dist, val)
				b := randRelDist(s, r, pair.b, nb, pair.p, dist, val)
				jWant := joinMerge(s, a, b, pair.p)
				sjWant := semijoinMerge(a, b, pair.p)
				for _, parts := range propParts {
					if got := joinMergeParallel(s, a, b, pair.p, parts); !bitIdentical(got, jWant) {
						t.Fatalf("%s/%s na=%d nb=%d parts=%d: parallel merge join not bit-identical\n got=%v\nwant=%v",
							dist.name, pair.name, na, nb, parts, got, jWant)
					}
					if got := semijoinMergeParallel(a, b, pair.p, parts); !bitIdentical(got, sjWant) {
						t.Fatalf("%s/%s na=%d nb=%d parts=%d: parallel merge semijoin not bit-identical",
							dist.name, pair.name, na, nb, parts)
					}
				}
			}
			for _, pair := range hashPairs {
				a := randRelDist(s, r, pair.a, na, 1, dist, val)
				b := randRelDist(s, r, pair.b, nb, 1, dist, val)
				shared := sharedVars(a, b)
				sjWant := semijoinHash(a, b, shared)
				jWant := joinHash(s, a, b, shared)
				for _, parts := range propParts {
					if got := semijoinHashParallel(a, b, shared, parts); !bitIdentical(got, sjWant) {
						t.Fatalf("%s/%s na=%d nb=%d parts=%d: parallel hash semijoin not bit-identical",
							dist.name, pair.name, na, nb, parts)
					}
					if got := joinHashParallel(s, a, b, shared, parts); !bitIdentical(got, jWant) {
						t.Fatalf("%s/%s na=%d nb=%d parts=%d: parallel hash join not bit-identical",
							dist.name, pair.name, na, nb, parts)
					}
				}
			}
		}
	}
}

func sharedVars[T any](a, b *Relation[T]) []int {
	var shared []int
	for _, v := range a.schema {
		if slices.Contains(b.schema, v) {
			shared = append(shared, v)
		}
	}
	return shared
}

func TestParallelKernelEquivalenceBool(t *testing.T) {
	checkParallelEquivalence[bool](t, semiring.Bool{}, func(r *rand.Rand) bool { return r.Intn(4) > 0 }, 301)
}

func TestParallelKernelEquivalenceCount(t *testing.T) {
	// Values in {-1..3} exercise zero-drop inside duplicate groups.
	checkParallelEquivalence[int64](t, semiring.Count{}, func(r *rand.Rand) int64 { return int64(r.Intn(5)) - 1 }, 302)
}

func TestParallelKernelEquivalenceSumProduct(t *testing.T) {
	// Floats make bit-identity demand the exact sequential ⊕-order.
	checkParallelEquivalence[float64](t, semiring.SumProduct{}, func(r *rand.Rand) float64 { return r.Float64() }, 303)
}

func TestParallelKernelEquivalenceMinPlus(t *testing.T) {
	checkParallelEquivalence[float64](t, semiring.MinPlus{}, func(r *rand.Rand) float64 { return float64(r.Intn(40)) / 8 }, 304)
}

// TestParallelSortFuncMatchesSequential drives the Builder's concurrent
// sub-sort + pairwise-merge path directly against slices.SortFunc on the
// same strict total order, across the distribution grid and partition
// counts (including parts > len).
func TestParallelSortFuncMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(305))
	cmp := func(p, q packedRow) int {
		if p.key != q.key {
			if p.key < q.key {
				return -1
			}
			return 1
		}
		return int(p.idx) - int(q.idx)
	}
	for _, dist := range keyDists {
		for _, n := range []int{0, 1, 2, 3, 17, 100, 1000} {
			pr := make([]packedRow, n)
			for i := range pr {
				pr[i] = packedRow{key: uint64(dist.key(r, i, n)), idx: int32(i)}
			}
			want := slices.Clone(pr)
			slices.SortFunc(want, cmp)
			for _, parts := range []int{2, 3, 7, 64, n + 1} {
				got := slices.Clone(pr)
				parallelSortFunc(got, cmp, parts)
				if !slices.Equal(got, want) {
					t.Fatalf("%s n=%d parts=%d: parallel sort != sequential sort", dist.name, n, parts)
				}
			}
		}
	}
}

// TestPublicDispatchWorkerSweep crosses the engage threshold through the
// public Join/Semijoin/Build entry points and pins bit-identity across
// worker counts 1/2/8 for every dispatch shape: merge join (ordered and
// unordered), merge semijoin, hash join, hash semijoin, and Builder.Build.
func TestPublicDispatchWorkerSweep(t *testing.T) {
	s := semiring.SumProduct{}
	r := rand.New(rand.NewSource(306))
	val := func(r *rand.Rand) float64 { return r.Float64() }
	n := parallelMinTuples // a.Len()+b.Len() crosses the threshold
	giant := keyDists[3]   // one-giant-group: the worst case for range cuts

	type op struct {
		name string
		run  func() *Relation[float64]
	}
	aOrd := randRelDist(s, r, []int{0, 1}, n, 1, giant, val)
	bOrd := randRelDist(s, r, []int{0, 2}, n, 1, giant, val)
	aUno := randRelDist(s, r, []int{0, 3}, n, 1, giant, val)
	aHash := randRelDist(s, r, []int{0, 1}, n, 1, giant, val)
	bHash := randRelDist(s, r, []int{1, 2}, n, 1, giant, val)
	ops := []op{
		{"Join/merge-ordered", func() *Relation[float64] { return Join(s, aOrd, bOrd) }},
		{"Join/merge-unordered", func() *Relation[float64] { return Join(s, aUno, bOrd) }},
		{"Semijoin/merge", func() *Relation[float64] { return Semijoin(s, aOrd, bOrd) }},
		{"Join/hash", func() *Relation[float64] { return Join(s, aHash, bHash) }},
		{"Semijoin/hash", func() *Relation[float64] { return Semijoin(s, aHash, bHash) }},
		{"Build", func() *Relation[float64] {
			rr := rand.New(rand.NewSource(307))
			b := NewBuilderHint[float64](s, []int{0, 1}, n)
			for i := 0; i < n; i++ {
				b.Add([]int{giant.key(rr, i, n), rr.Intn(64)}, val(rr))
			}
			return b.Build()
		}},
	}
	for _, o := range ops {
		prev := exec.SetWorkers(1)
		want := o.run()
		var got2, got8 *Relation[float64]
		exec.SetWorkers(2)
		got2 = o.run()
		exec.SetWorkers(8)
		got8 = o.run()
		exec.SetWorkers(prev)
		if want.Len() == 0 {
			t.Fatalf("%s: degenerate test, empty output", o.name)
		}
		if !bitIdentical(got2, want) || !bitIdentical(got8, want) {
			t.Fatalf("%s: multi-worker output not bit-identical to 1-worker", o.name)
		}
	}
}

// FuzzJoinMergeParallel seeds adversarial packed-key layouts — all-equal
// keys, one giant group, alternating runs — and asserts that the
// range-split parallel merge join and semijoin produce byte-identical
// output to their sequential twins at every partition count, in both the
// ordered and the Builder (unordered) orientation.
func FuzzJoinMergeParallel(f *testing.F) {
	f.Add([]byte{3}, bytes.Repeat([]byte{5, 1}, 40))         // all-equal keys: one giant group on both sides
	f.Add([]byte{7}, bytes.Repeat([]byte{9, 2}, 50))         // all-equal at a different parts count
	giant := append(bytes.Repeat([]byte{3, 0}, 45), 200, 1, 201, 2, 202, 3) // one giant group plus outliers
	f.Add([]byte{5}, giant)
	alt := make([]byte, 96) // alternating runs: key flips 1/17 every tuple
	for i := 0; i < len(alt); i += 2 {
		if i%4 == 0 {
			alt[i] = 1
		} else {
			alt[i] = 17
		}
		alt[i+1] = byte(i)
	}
	f.Add([]byte{2}, alt)
	f.Add([]byte{6}, []byte{}) // empty operands
	f.Add([]byte{4}, []byte{8, 1})

	f.Fuzz(func(t *testing.T, cfg, data []byte) {
		parts := 2
		if len(cfg) > 0 {
			parts = 2 + int(cfg[0])%7
		}
		s := semiring.Count{}
		ba := NewBuilder[int64](s, []int{0, 1}) // ordered orientation vs b
		bu := NewBuilder[int64](s, []int{0, 3}) // unordered orientation vs b
		bb := NewBuilder[int64](s, []int{0, 2})
		for i := 0; i+1 < len(data); i += 2 {
			key, payload := int(data[i])%16, int(data[i+1])%8
			v := int64(data[i+1]%3) - 1 // {-1,0,1}: exercises zero-drop
			switch (i / 2) % 3 {
			case 0:
				ba.Add([]int{key, payload}, v)
			case 1:
				bb.Add([]int{key, payload}, v)
			case 2:
				bu.Add([]int{key, payload}, v)
			}
		}
		a, u, b := ba.Build(), bu.Build(), bb.Build()

		for _, pc := range []int{2, parts, 64} {
			if got, want := joinMergeParallel(s, a, b, 1, pc), joinMerge(s, a, b, 1); !bitIdentical(got, want) {
				t.Fatalf("parts=%d: ordered parallel merge join != sequential\n got=%v\nwant=%v", pc, got, want)
			}
			if got, want := joinMergeParallel(s, u, b, 1, pc), joinMerge(s, u, b, 1); !bitIdentical(got, want) {
				t.Fatalf("parts=%d: unordered parallel merge join != sequential", pc)
			}
			if got, want := semijoinMergeParallel(a, b, 1, pc), semijoinMerge(a, b, 1); !bitIdentical(got, want) {
				t.Fatalf("parts=%d: parallel merge semijoin != sequential", pc)
			}
		}
	})
}
