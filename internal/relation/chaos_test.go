package relation

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/semiring"
)

// chaosRelation builds a seeded two-column Count relation.
func chaosRelation(schema []int, n, dom int, seed int64) *Relation[int64] {
	s := semiring.Count{}
	r := rand.New(rand.NewSource(seed))
	b := NewBuilderHint[int64](s, schema, n)
	tuple := make([]int, len(schema))
	for i := 0; i < n; i++ {
		for j := range tuple {
			tuple[j] = r.Intn(dom)
		}
		b.Add(tuple, int64(1+r.Intn(3)))
	}
	return b.Build()
}

// recoverInjected runs f and returns the *fault.InjectedPanic it
// panicked with, unwrapping the pool's TaskPanic envelope (parallel
// kernel paths surface worker panics that way).
func recoverInjected(f func()) (ip *fault.InjectedPanic) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if tp, ok := r.(*exec.TaskPanic); ok {
			r = tp.Val
		}
		var ok bool
		if ip, ok = r.(*fault.InjectedPanic); !ok {
			panic(r)
		}
	}()
	f()
	return nil
}

// TestChaosKernel sweeps the kernel-entry failpoints at the call shape
// the kernels expose: the value-returning kernels (Join, Semijoin,
// Build) panic with a typed *fault.InjectedPanic on every failing mode
// — the payload the service boundary converts to ErrInternal — and
// EliminateVar returns a typed error. Pinned at 1/2/8 workers since the
// kernels partition internally; a contained fault never corrupts a
// later fault-free run.
func TestChaosKernel(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	s := semiring.Count{}
	a := chaosRelation([]int{0, 1}, 400, 12, 1)
	b := chaosRelation([]int{1, 2}, 400, 12, 2)

	wantJoin := Join(s, a, b)
	wantSemi := Semijoin(s, a, b)
	wantElim, err := EliminateVar(s, a, 1, semiring.AddOf[int64](s), 12)
	if err != nil {
		t.Fatal(err)
	}

	kernels := []struct {
		site string
		run  func()
	}{
		{"relation.join", func() { Join(s, a, b) }},
		{"relation.semijoin", func() { Semijoin(s, a, b) }},
		{"relation.build", func() { chaosRelation([]int{0, 1}, 50, 8, 3) }},
	}
	for _, w := range []int{1, 2, 8} {
		prev := exec.SetWorkers(w)
		for _, k := range kernels {
			for _, mode := range []fault.Mode{fault.ModeError, fault.ModePanic, fault.ModeCancel} {
				t.Run(fmt.Sprintf("w%d/%s/%s", w, k.site, mode), func(t *testing.T) {
					fault.Enable(k.site, fault.Config{Mode: mode, Once: true})
					defer fault.Reset()
					ip := recoverInjected(k.run)
					if ip == nil || ip.Site != k.site {
						t.Fatalf("kernel fault did not surface as InjectedPanic{%s}: %+v", k.site, ip)
					}
				})
			}
			// Delay mode must not change the kernel's answer.
			t.Run(fmt.Sprintf("w%d/%s/delay", w, k.site), func(t *testing.T) {
				fault.Enable(k.site, fault.Config{Mode: fault.ModeDelay, Once: true})
				defer fault.Reset()
				k.run()
				if s, _ := fault.Lookup(k.site); s.Fired() == 0 {
					t.Fatalf("delay at %s never fired", k.site)
				}
			})
		}

		t.Run(fmt.Sprintf("w%d/relation.eliminate/error", w), func(t *testing.T) {
			fault.Enable("relation.eliminate", fault.Config{Mode: fault.ModeError, Once: true})
			defer fault.Reset()
			_, err := EliminateVar(s, a, 1, semiring.AddOf[int64](s), 12)
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("EliminateVar under error mode: %v, want ErrInjected", err)
			}
		})

		// Fault-free runs after the sweep stay bit-identical.
		if got := Join(s, a, b); !Equal(s, got, wantJoin) {
			t.Fatalf("w%d: Join differs after chaos sweep", w)
		}
		if got := Semijoin(s, a, b); !Equal(s, got, wantSemi) {
			t.Fatalf("w%d: Semijoin differs after chaos sweep", w)
		}
		if got, err := EliminateVar(s, a, 1, semiring.AddOf[int64](s), 12); err != nil || !Equal(s, got, wantElim) {
			t.Fatalf("w%d: EliminateVar differs after chaos sweep: %v", w, err)
		}
		exec.SetWorkers(prev)
	}
}
