package flow

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
)

func TestMaxFlowLine(t *testing.T) {
	g := topology.Line(5)
	r, err := MaxFlow(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 1 {
		t.Errorf("flow = %d, want 1", r.Value)
	}
	if len(r.Paths) != 1 || len(r.Paths[0]) != 5 {
		t.Errorf("paths = %v", r.Paths)
	}
}

func TestMaxFlowClique(t *testing.T) {
	g := topology.Clique(4)
	r, err := MaxFlow(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 3 {
		t.Errorf("flow K4 = %d, want 3", r.Value)
	}
	checkPathsValid(t, g, r, 0, 3)
}

func TestMaxFlowGrid(t *testing.T) {
	g := topology.Grid(3, 3)
	r, err := MaxFlow(g, 0, 8) // opposite corners, both degree 2
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 2 {
		t.Errorf("flow grid corners = %d, want 2", r.Value)
	}
	checkPathsValid(t, g, r, 0, 8)
}

func checkPathsValid(t *testing.T, g *topology.Graph, r *Result, s, dst int) {
	t.Helper()
	used := map[int]bool{}
	for _, p := range r.Paths {
		if p[0] != s || p[len(p)-1] != dst {
			t.Fatalf("path %v does not run %d->%d", p, s, dst)
		}
		for i := 0; i+1 < len(p); i++ {
			id, ok := g.EdgeID(p[i], p[i+1])
			if !ok {
				t.Fatalf("path %v uses non-edge (%d,%d)", p, p[i], p[i+1])
			}
			if used[id] {
				t.Fatalf("paths not edge-disjoint at edge %d", id)
			}
			used[id] = true
		}
	}
}

func TestMaxFlowErrors(t *testing.T) {
	g := topology.Line(3)
	if _, err := MaxFlow(g, 1, 1); err == nil {
		t.Error("expected error for s == t")
	}
	if _, err := MaxFlow(g, 0, 9); err == nil {
		t.Error("expected error for out-of-range endpoint")
	}
}

func TestMinCutSeparating(t *testing.T) {
	cases := []struct {
		name string
		g    *topology.Graph
		K    []int
		want int
	}{
		{"line ends", topology.Line(4), []int{0, 3}, 1},
		{"line all", topology.Line(4), []int{0, 1, 2, 3}, 1},
		{"clique4", topology.Clique(4), []int{0, 1, 2, 3}, 3},
		{"ring", topology.Ring(6), []int{0, 3}, 2},
		{"grid corners", topology.Grid(3, 3), []int{0, 8}, 2},
	}
	for _, c := range cases {
		got, side, err := MinCutSeparating(c.g, c.K)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if got != c.want {
			t.Errorf("MinCut(%s) = %d, want %d", c.name, got, c.want)
		}
		// The side must split K.
		inA, inB := false, false
		for _, k := range c.K {
			if side[k] {
				inA = true
			} else {
				inB = true
			}
		}
		if !inA || !inB {
			t.Errorf("%s: cut side does not separate K", c.name)
		}
	}
}

func TestMinCutErrors(t *testing.T) {
	g := topology.Line(3)
	if _, _, err := MinCutSeparating(g, []int{0}); err == nil {
		t.Error("expected error for |K| < 2")
	}
	h := topology.NewGraph(4)
	h.AddEdge(0, 1)
	h.AddEdge(2, 3)
	if _, _, err := MinCutSeparating(h, []int{0, 2}); err == nil {
		t.Error("expected error for disconnected players")
	}
}

func TestCliquePackingEven(t *testing.T) {
	// K4: two edge-disjoint Hamiltonian paths — the packing behind
	// Example 2.3's N/2 + 2 round protocol (Figure 2's W1, W2).
	g := topology.Clique(4)
	K := []int{0, 1, 2, 3}
	trees := PackSteinerTrees(g, K, 3)
	if len(trees) != 2 {
		t.Fatalf("ST(K4, Δ=3) = %d, want 2", len(trees))
	}
	checkPackingValid(t, g, K, trees)
}

func TestCliquePackingOdd(t *testing.T) {
	g := topology.Clique(5)
	K := []int{0, 1, 2, 3, 4}
	trees := PackSteinerTrees(g, K, 5)
	if len(trees) != 2 {
		t.Fatalf("ST(K5) = %d, want 2", len(trees))
	}
	checkPackingValid(t, g, K, trees)
	// Each Hamiltonian path spans all 5 vertices (4 edges); the Walecki
	// cycles drop their closing edge to stay trees.
	for _, tr := range trees {
		if len(tr.Edges) != 4 {
			t.Errorf("path uses %d edges, want 4", len(tr.Edges))
		}
	}
}

func TestCliquePackingLarger(t *testing.T) {
	for _, n := range []int{6, 7, 8, 9} {
		g := topology.Clique(n)
		K := make([]int, n)
		for i := range K {
			K[i] = i
		}
		trees := PackSteinerTrees(g, K, n)
		if len(trees) != n/2 {
			t.Errorf("ST(K%d) = %d, want %d", n, len(trees), n/2)
		}
		checkPackingValid(t, g, K, trees)
	}
}

func TestLinePacking(t *testing.T) {
	g := topology.Line(5)
	K := []int{0, 2, 4}
	trees := PackSteinerTrees(g, K, 4)
	if len(trees) != 1 {
		t.Fatalf("ST(line) = %d, want 1", len(trees))
	}
	checkPackingValid(t, g, K, trees)
	if got := trees[0].TerminalDiameter(g, K); got != 4 {
		t.Errorf("terminal diameter = %d, want 4", got)
	}
}

func TestMPC0Packing(t *testing.T) {
	// Appendix A.1.4: each of the p hub nodes with its k player edges is
	// a diameter-2 Steiner tree; the packing has p trees.
	g, players := topology.MPC0(4, 3)
	trees := PackSteinerTrees(g, players, 2)
	if len(trees) != 3 {
		t.Fatalf("ST(MPC0, Δ=2) = %d, want p = 3", len(trees))
	}
	checkPackingValid(t, g, players, trees)
}

func checkPackingValid(t *testing.T, g *topology.Graph, K []int, trees []*SteinerTree) {
	t.Helper()
	used := map[int]bool{}
	for ti, tr := range trees {
		for _, e := range tr.Edges {
			if used[e] {
				t.Fatalf("tree %d reuses edge %d", ti, e)
			}
			used[e] = true
		}
		// Each tree must connect all terminals.
		in := map[int]bool{}
		for _, e := range tr.Edges {
			in[e] = true
		}
		d := g.BFS(K[0], func(id int) bool { return in[id] })
		for _, k := range K[1:] {
			if d[k] == -1 {
				t.Fatalf("tree %d does not connect terminal %d", ti, k)
			}
		}
	}
}

// TestPackingMeetsMinCutBound asserts the Theorem 3.10 guarantee
// ST(G, K, |V|) = Ω(MinCut(G, K)) — with constant 1/2 for our packer —
// on random connected topologies.
func TestPackingMeetsMinCutBound(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		n := 4 + r.Intn(8)
		g := topology.RandomConnected(n, r.Intn(2*n), r)
		var K []int
		for v := 0; v < n; v++ {
			if r.Intn(2) == 0 {
				K = append(K, v)
			}
		}
		if len(K) < 2 {
			K = []int{0, n - 1}
		}
		mincut, _, err := MinCutSeparating(g, K)
		if err != nil {
			t.Fatal(err)
		}
		st := STCount(g, K, g.N())
		if 2*st < mincut {
			t.Errorf("ST = %d below MinCut/2 = %d/2 on %v K=%v", st, mincut, g, K)
		}
		if st > mincut {
			t.Errorf("ST = %d exceeds MinCut = %d (impossible for valid packing)", st, mincut)
		}
	}
}

func TestTauMCFLine(t *testing.T) {
	g := topology.Line(4)
	K := []int{0, 3}
	rounds, collector, err := TauMCF(g, K, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Worst case: 100 units across the single path of length 3.
	if rounds != 103 {
		t.Errorf("τ_MCF = %d, want 103", rounds)
	}
	if collector != 0 && collector != 3 {
		t.Errorf("collector = %d, want a player", collector)
	}
}

func TestTauMCFClique(t *testing.T) {
	g := topology.Clique(4)
	K := []int{0, 1, 2, 3}
	rounds, _, err := TauMCF(g, K, 99)
	if err != nil {
		t.Fatal(err)
	}
	// Flow 3 between any pair, distance 1: ceil(99/3) + 1 = 34.
	if rounds != 34 {
		t.Errorf("τ_MCF = %d, want 34", rounds)
	}
}

func TestTauMCFAppendixD1Bound(t *testing.T) {
	// Appendix D.1: τ_MCF(G,K,N′) is within Õ(1) of N′/MinCut(G,K) for
	// worst-case assignments; here within distance + constant factors.
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 4 + r.Intn(8)
		g := topology.RandomConnected(n, r.Intn(n), r)
		K := []int{0, n - 1}
		units := 64 + r.Intn(512)
		rounds, _, err := TauMCF(g, K, units)
		if err != nil {
			t.Fatal(err)
		}
		mincut, _, err := MinCutSeparating(g, K)
		if err != nil {
			t.Fatal(err)
		}
		lower := units / mincut
		upper := units/mincut + n + units%mincut + 1
		if rounds < lower-1 || rounds > upper {
			t.Errorf("τ_MCF = %d outside [%d, %d] (mincut %d, units %d)",
				rounds, lower, upper, mincut, units)
		}
	}
}

func TestTauMCFEdgeCases(t *testing.T) {
	g := topology.Line(3)
	if _, _, err := TauMCF(g, nil, 5); err == nil {
		t.Error("expected error for empty K")
	}
	rounds, collector, err := TauMCF(g, []int{1}, 5)
	if err != nil || rounds != 0 || collector != 1 {
		t.Errorf("single player should cost 0 rounds: %d, %d, %v", rounds, collector, err)
	}
	if _, _, err := TauMCF(g, []int{0, 2}, -1); err == nil {
		t.Error("expected error for negative units")
	}
}

func TestBestDeltaExample23(t *testing.T) {
	// Example 2.3: star on the 4-clique. Two edge-disjoint Hamiltonian
	// paths let the protocol finish in N/2 + O(1) rounds.
	g := topology.Clique(4)
	K := []int{0, 1, 2, 3}
	N := 128
	delta, trees, bound, err := BestDelta(g, K, N)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 2 {
		t.Errorf("packing size = %d, want 2", len(trees))
	}
	if bound != N/2+delta {
		t.Errorf("bound = %d, want %d", bound, N/2+delta)
	}
	if bound > N/2+4 {
		t.Errorf("bound = %d too far above N/2 + 2", bound)
	}
}

func TestBestDeltaLine(t *testing.T) {
	// On a line the only packing is the single path: bound = N + Δ.
	g := topology.Line(4)
	K := []int{0, 1, 2, 3}
	N := 64
	_, trees, bound, err := BestDelta(g, K, N)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 1 {
		t.Errorf("packing size = %d, want 1", len(trees))
	}
	if bound != N+3 {
		t.Errorf("bound = %d, want N+3 = %d", bound, N+3)
	}
}

func TestBestDeltaErrors(t *testing.T) {
	g := topology.Line(3)
	if _, _, _, err := BestDelta(g, []int{0}, 5); err == nil {
		t.Error("expected error for singleton K")
	}
	h := topology.NewGraph(4)
	h.AddEdge(0, 1)
	h.AddEdge(2, 3)
	if _, _, _, err := BestDelta(h, []int{0, 3}, 5); err == nil {
		t.Error("expected error for disconnected players")
	}
}
