package flow

import (
	"fmt"
	"math/rand"

	"repro/internal/exec"
	"repro/internal/topology"
)

// SteinerTree is a tree (edge-index set plus vertex list) connecting a
// terminal set inside a topology.
type SteinerTree struct {
	Edges []int
	// Root is a designated terminal (protocols converge-cast toward it).
	Root int
}

// buildSteinerTree grows a Steiner tree over the terminals using the
// shortest-path heuristic (connect the nearest unreached terminal to the
// current tree), restricted to allowed edges. Returns nil when the
// terminals cannot be connected.
func buildSteinerTree(g *topology.Graph, terminals []int, allowed []bool, order []int) *SteinerTree {
	if len(terminals) == 0 {
		return nil
	}
	inTree := make([]bool, g.N())
	t := &SteinerTree{Root: terminals[0]}
	inTree[terminals[0]] = true
	remaining := map[int]bool{}
	for _, k := range terminals[1:] {
		if k != terminals[0] {
			remaining[k] = true
		}
	}
	allowFn := func(id int) bool { return allowed == nil || allowed[id] }
	for len(remaining) > 0 {
		// Multi-source BFS from the current tree to the nearest
		// remaining terminal.
		prev := make([]int, g.N())
		for i := range prev {
			prev[i] = -1
		}
		var queue []int
		for v := 0; v < g.N(); v++ {
			if inTree[v] {
				prev[v] = v
				queue = append(queue, v)
			}
		}
		found := -1
		for len(queue) > 0 && found == -1 {
			u := queue[0]
			queue = queue[1:]
			neighbors := g.Adj(u)
			for _, oi := range order {
				if oi >= len(neighbors) {
					continue
				}
				v := neighbors[oi]
				if prev[v] != -1 {
					continue
				}
				id, _ := g.EdgeID(u, v)
				if !allowFn(id) {
					continue
				}
				prev[v] = u
				if remaining[v] {
					found = v
					break
				}
				queue = append(queue, v)
			}
		}
		if found == -1 {
			return nil
		}
		for v := found; !inTree[v]; v = prev[v] {
			inTree[v] = true
			id, _ := g.EdgeID(v, prev[v])
			t.Edges = append(t.Edges, id)
		}
		delete(remaining, found)
	}
	return t
}

// TerminalDiameter returns the largest hop distance between two
// terminals within the tree.
func (t *SteinerTree) TerminalDiameter(g *topology.Graph, terminals []int) int {
	in := make(map[int]bool, len(t.Edges))
	for _, e := range t.Edges {
		in[e] = true
	}
	allowed := func(id int) bool { return in[id] }
	max := 0
	for _, a := range terminals {
		d := g.BFS(a, allowed)
		for _, b := range terminals {
			if d[b] > max {
				max = d[b]
			}
		}
	}
	return max
}

// PackSteinerTrees computes a large set of edge-disjoint Steiner trees
// for K in g, each with terminal diameter at most delta — the packing
// ST(G, K, Δ) of Definition 3.9. Exact maximum packing is NP-hard; this
// uses the exact zigzag Hamiltonian-path decomposition on cliques (the
// paper's Example 2.3 and the two-path packing W₁, W₂ of Figure 2) and a
// randomized greedy elsewhere, which meets Theorem 3.10's
// ST = Ω(MinCut) guarantee on the topology families used in the paper
// (asserted in tests).
func PackSteinerTrees(g *topology.Graph, K []int, delta int) []*SteinerTree {
	if len(K) < 2 {
		return nil
	}
	if trees := cliquePacking(g, K, delta); trees != nil {
		return trees
	}
	return greedyPacking(g, K, delta)
}

// cliquePacking decomposes a complete topology into ⌊n/2⌋ edge-disjoint
// Hamiltonian paths (zigzag / Walecki construction); each path spans all
// vertices and therefore is a Steiner tree for any K.
func cliquePacking(g *topology.Graph, K []int, delta int) []*SteinerTree {
	n := g.N()
	if n < 3 || g.M() != n*(n-1)/2 {
		return nil
	}
	if delta < n-1 {
		// A Hamiltonian path may stretch terminals up to n-1 apart; let
		// the greedy handle tighter diameter demands.
		return nil
	}
	var paths [][]int
	if n%2 == 0 {
		for j := 0; j < n/2; j++ {
			paths = append(paths, zigzag(j, n, n))
		}
	} else {
		m := (n - 1) / 2
		for j := 0; j < m; j++ {
			paths = append(paths, append([]int{n - 1}, zigzag(j, n-1, n-1)...))
		}
	}
	var trees []*SteinerTree
	for _, p := range paths {
		t := &SteinerTree{Root: K[0]}
		for i := 0; i+1 < len(p); i++ {
			id, ok := g.EdgeID(p[i], p[i+1])
			if !ok {
				return nil
			}
			t.Edges = append(t.Edges, id)
		}
		trees = append(trees, t)
	}
	return trees
}

// zigzag returns the sequence j, j+1, j-1, j+2, j-2, ... of length n
// modulo mod — one path of the classic Hamiltonian decomposition of
// even complete graphs.
func zigzag(j, n, mod int) []int {
	out := make([]int, n)
	out[0] = j % mod
	for i := 1; i < n; i++ {
		var off int
		if i%2 == 1 {
			off = (i + 1) / 2
		} else {
			off = -i / 2
		}
		out[i] = ((j+off)%mod + mod) % mod
	}
	return out
}

// greedyPacking repeatedly carves diameter-bounded Steiner trees out of
// the remaining edges, trying several deterministic-seeded neighbor
// orders per round before giving up.
func greedyPacking(g *topology.Graph, K []int, delta int) []*SteinerTree {
	allowed := make([]bool, g.M())
	for i := range allowed {
		allowed[i] = true
	}
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	baseOrder := make([]int, maxDeg)
	for i := range baseOrder {
		baseOrder[i] = i
	}
	rng := rand.New(rand.NewSource(1))
	var trees []*SteinerTree
	for {
		var found *SteinerTree
		for attempt := 0; attempt < 8; attempt++ {
			order := append([]int(nil), baseOrder...)
			if attempt > 0 {
				rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			}
			t := buildSteinerTree(g, K, allowed, order)
			if t == nil {
				continue
			}
			if t.TerminalDiameter(g, K) <= delta {
				found = t
				break
			}
		}
		if found == nil {
			return trees
		}
		for _, e := range found.Edges {
			allowed[e] = false
		}
		trees = append(trees, found)
	}
}

// STCount returns |ST(G, K, Δ)| as produced by PackSteinerTrees.
func STCount(g *topology.Graph, K []int, delta int) int {
	return len(PackSteinerTrees(g, K, delta))
}

// BestDelta minimizes the set-intersection round bound of Theorem 3.11,
// min over Δ of (units/ST(G,K,Δ) + Δ), over the sensible Δ range
// [1, |V|]. It returns the chosen Δ, the packing, and the bound value.
// units is the number of per-edge-per-round payload units to aggregate
// (N tuples in the paper's normalization).
//
// The per-candidate packings dominate star setup on dense topologies and
// are independent pure reads of the immutable topology (greedyPacking
// seeds a private rand.Source per call), so the sweep shards across the
// exec pool — the same discipline as the protocol layer's MaxFlow
// sharding. Selection stays a sequential scan in candidate order with a
// strict < tie-break, so the chosen Δ and packing are identical at every
// worker count.
func BestDelta(g *topology.Graph, K []int, units int) (int, []*SteinerTree, int, error) {
	if len(K) < 2 {
		return 0, nil, 0, fmt.Errorf("flow: BestDelta needs ≥ 2 players")
	}
	if !g.ConnectsAll(K) {
		return 0, nil, 0, fmt.Errorf("flow: players %v not connected", K)
	}
	// Candidate deltas: every value for small topologies; powers of two
	// plus |V| for large ones (within a factor 2 of the true min).
	var candidates []int
	if g.N() <= 64 {
		for d := 1; d <= g.N(); d++ {
			candidates = append(candidates, d)
		}
	} else {
		for d := 1; d < g.N(); d *= 2 {
			candidates = append(candidates, d)
		}
		candidates = append(candidates, g.N())
	}
	packings := make([][]*SteinerTree, len(candidates))
	exec.Default().Map(len(candidates), func(i int) {
		packings[i] = PackSteinerTrees(g, K, candidates[i])
	})
	bestDelta, bestVal := -1, 0
	var bestTrees []*SteinerTree
	for i, d := range candidates {
		trees := packings[i]
		if len(trees) == 0 {
			continue
		}
		val := ceilDiv(units, len(trees)) + d
		if bestDelta == -1 || val < bestVal {
			bestDelta, bestVal, bestTrees = d, val, trees
		}
	}
	if bestDelta == -1 {
		return 0, nil, 0, fmt.Errorf("flow: no Steiner tree connects %v", K)
	}
	return bestDelta, bestTrees, bestVal, nil
}
