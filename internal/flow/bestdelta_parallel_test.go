package flow

import (
	"reflect"
	"testing"

	"repro/internal/exec"
	"repro/internal/topology"
)

// BestDelta's candidate sweep is sharded across the exec pool; the
// selection (Δ, packing, bound value) must be identical at every worker
// count because the sequential scan keeps the candidate-order tie-break.
// Driven on the dense fixtures where the sweep actually dominates, under
// `-race` via the CI race job.
func TestBestDeltaWorkerSweepDeterminism(t *testing.T) {
	fixtures := []struct {
		name string
		g    *topology.Graph
		K    []int
	}{
		{"clique8", topology.Clique(8), []int{0, 2, 5, 7}},
		{"grid3x4", topology.Grid(3, 4), []int{0, 5, 11}},
		{"ring6", topology.Ring(6), []int{0, 3}},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			for _, units := range []int{1, 64, 4096} {
				prev := exec.SetWorkers(1)
				wd, wt, wv, werr := BestDelta(fx.g, fx.K, units)
				for _, w := range []int{2, 8} {
					exec.SetWorkers(w)
					gd, gt, gv, gerr := BestDelta(fx.g, fx.K, units)
					if (werr == nil) != (gerr == nil) {
						t.Fatalf("units=%d workers=%d: err %v vs sequential %v", units, w, gerr, werr)
					}
					if gd != wd || gv != wv || !reflect.DeepEqual(gt, wt) {
						t.Fatalf("units=%d workers=%d: (Δ=%d, |ST|=%d, val=%d) != sequential (Δ=%d, |ST|=%d, val=%d)",
							units, w, gd, len(gt), gv, wd, len(wt), wv)
					}
				}
				exec.SetWorkers(prev)
			}
		})
	}
}
