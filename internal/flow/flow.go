// Package flow implements the network-flow machinery of the paper's
// protocols and bounds: unit-capacity max-flow / min-cut (Edmonds–Karp),
// the cut MinCut(G,K) separating the player set (Definition 3.6),
// edge-disjoint Steiner-tree packing ST(G,K,Δ) (Definition 3.9,
// Theorem 3.10), and the many-to-one routing cost τ_MCF (Definition 3.12)
// used by the trivial protocol (Lemma 3.1).
package flow

import (
	"fmt"

	"repro/internal/topology"
)

// Result is the outcome of a unit-capacity max-flow computation.
type Result struct {
	// Value is the max-flow value = number of edge-disjoint s-t paths
	// (Menger).
	Value int
	// Paths decomposes the flow into edge-disjoint s-t paths (vertex
	// sequences), used by routing schedules.
	Paths [][]int
	// SourceSide[v] reports whether v is on s's side of the induced
	// minimum cut (residual-reachable from s).
	SourceSide []bool
}

// MaxFlow computes the maximum s-t flow in g with unit capacity per
// undirected edge, via BFS augmentation. Unit capacities make Value the
// number of edge-disjoint s-t paths.
func MaxFlow(g *topology.Graph, s, t int) (*Result, error) {
	if s == t {
		return nil, fmt.Errorf("flow: s == t == %d", s)
	}
	n := g.N()
	if s < 0 || s >= n || t < 0 || t >= n {
		return nil, fmt.Errorf("flow: endpoint out of range")
	}
	// netFlow[e] ∈ {-1, 0, +1}: +1 means flow from lower to higher
	// endpoint of edge e.
	netFlow := make([]int, g.M())
	residualOK := func(u, v int) bool {
		id, ok := g.EdgeID(u, v)
		if !ok {
			return false
		}
		a, _ := g.Edge(id)
		if u == a { // traversing low->high: need netFlow < 1
			return netFlow[id] < 1
		}
		return netFlow[id] > -1
	}
	push := func(u, v int) {
		id, _ := g.EdgeID(u, v)
		a, _ := g.Edge(id)
		if u == a {
			netFlow[id]++
		} else {
			netFlow[id]--
		}
	}
	prev := make([]int, n)
	for {
		for i := range prev {
			prev[i] = -1
		}
		prev[s] = s
		queue := []int{s}
		for len(queue) > 0 && prev[t] == -1 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Adj(u) {
				if prev[v] == -1 && residualOK(u, v) {
					prev[v] = u
					queue = append(queue, v)
				}
			}
		}
		if prev[t] == -1 {
			break
		}
		for v := t; v != s; v = prev[v] {
			push(prev[v], v)
		}
	}
	res := &Result{SourceSide: make([]bool, n)}
	// Residual reachability marks the source side of a minimum cut.
	res.SourceSide[s] = true
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Adj(u) {
			if !res.SourceSide[v] && residualOK(u, v) {
				res.SourceSide[v] = true
				queue = append(queue, v)
			}
		}
	}
	// Decompose net flow into edge-disjoint paths: repeatedly walk
	// positive-flow arcs from s to t.
	outArcs := func(u int) (int, bool) {
		for _, v := range g.Adj(u) {
			id, _ := g.EdgeID(u, v)
			a, _ := g.Edge(id)
			if (u == a && netFlow[id] == 1) || (u != a && netFlow[id] == -1) {
				return v, true
			}
		}
		return 0, false
	}
	for {
		path := []int{s}
		u := s
		for u != t {
			v, ok := outArcs(u)
			if !ok {
				break
			}
			id, _ := g.EdgeID(u, v)
			netFlow[id] = 0
			path = append(path, v)
			u = v
		}
		if u != t {
			break
		}
		res.Paths = append(res.Paths, path)
	}
	res.Value = len(res.Paths)
	return res, nil
}

// MinCutSeparating computes MinCut(G, K) (Definition 3.6): the smallest
// edge cut whose removal separates the player set K into two nonempty
// sides. It returns the cut value and one side (as a vertex indicator).
// |K| must be at least 2 and K must be connected in g.
func MinCutSeparating(g *topology.Graph, K []int) (int, []bool, error) {
	if len(K) < 2 {
		return 0, nil, fmt.Errorf("flow: MinCut needs ≥ 2 players, got %d", len(K))
	}
	if !g.ConnectsAll(K) {
		return 0, nil, fmt.Errorf("flow: players %v not connected in %v", K, g)
	}
	best := -1
	var side []bool
	s := K[0]
	for _, t := range K[1:] {
		r, err := MaxFlow(g, s, t)
		if err != nil {
			return 0, nil, err
		}
		if best == -1 || r.Value < best {
			best = r.Value
			side = r.SourceSide
		}
	}
	return best, side, nil
}

// Dist returns pairwise hop distance d(u, v) in g, or -1 if disconnected.
func Dist(g *topology.Graph, u, v int) int {
	return g.BFS(u, nil)[v]
}

// TauMCF evaluates the routing cost τ_MCF(G, K, N′) of Definition 3.12:
// the number of rounds needed to ship N′ units (each unit = one tuple of
// log₂N′ bits, one unit per edge per round) from all players in K to the
// best single collection player, under the worst-case placement of the
// units (all at one player, per the paper's simplification in
// Appendix D.1). It returns the round count and the chosen collector.
func TauMCF(g *topology.Graph, K []int, units int) (int, int, error) {
	if len(K) == 0 {
		return 0, -1, fmt.Errorf("flow: empty player set")
	}
	if len(K) == 1 {
		return 0, K[0], nil
	}
	if units < 0 {
		return 0, -1, fmt.Errorf("flow: negative unit count %d", units)
	}
	bestRounds, bestT := -1, -1
	for _, t := range K {
		worst := 0
		for _, s := range K {
			if s == t {
				continue
			}
			r, err := MaxFlow(g, s, t)
			if err != nil {
				return 0, -1, err
			}
			if r.Value == 0 {
				return 0, -1, fmt.Errorf("flow: players %d and %d disconnected", s, t)
			}
			rounds := ceilDiv(units, r.Value) + Dist(g, s, t)
			if rounds > worst {
				worst = rounds
			}
		}
		if bestRounds == -1 || worst < bestRounds {
			bestRounds, bestT = worst, t
		}
	}
	return bestRounds, bestT, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
