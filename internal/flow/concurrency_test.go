package flow

import (
	"reflect"
	"testing"

	"repro/internal/exec"
	"repro/internal/topology"
)

// Concurrency safety of MaxFlow: the protocol layer now shards its
// per-factor flow computations across the exec pool, so many MaxFlow
// calls run simultaneously against one shared topology.Graph. MaxFlow
// must treat the graph as read-only (all mutable state — netFlow, BFS
// queues, path decompositions — is call-local). This test drives the
// exact sharded pattern on the grid and clique fixtures under `-race`
// (CI runs the race job on every package) and checks every concurrent
// result deep-equals its sequential twin: Value, Paths, and SourceSide.
func TestMaxFlowConcurrentCallsShareGraph(t *testing.T) {
	fixtures := []struct {
		name string
		g    *topology.Graph
	}{
		{"grid", topology.Grid(3, 4)},
		{"clique", topology.Clique(8)},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			n := fx.g.N()
			type pair struct{ s, t int }
			var pairs []pair
			for s := 0; s < n; s++ {
				for u := 0; u < n; u++ {
					if s != u {
						pairs = append(pairs, pair{s, u})
					}
				}
			}
			want := make([]*Result, len(pairs))
			for i, p := range pairs {
				r, err := MaxFlow(fx.g, p.s, p.t)
				if err != nil {
					t.Fatal(err)
				}
				want[i] = r
			}
			// Several rounds of the sharded pattern: every pair's MaxFlow
			// concurrently on one pool, results compared to sequential.
			pool := exec.New(8)
			for round := 0; round < 3; round++ {
				got := make([]*Result, len(pairs))
				if err := pool.MapErr(len(pairs), func(i int) error {
					r, err := MaxFlow(fx.g, pairs[i].s, pairs[i].t)
					got[i] = r
					return err
				}); err != nil {
					t.Fatal(err)
				}
				for i := range pairs {
					if got[i].Value != want[i].Value {
						t.Fatalf("round %d pair %v: Value %d != %d", round, pairs[i], got[i].Value, want[i].Value)
					}
					if !reflect.DeepEqual(got[i].Paths, want[i].Paths) {
						t.Fatalf("round %d pair %v: Paths diverged", round, pairs[i])
					}
					if !reflect.DeepEqual(got[i].SourceSide, want[i].SourceSide) {
						t.Fatalf("round %d pair %v: SourceSide diverged", round, pairs[i])
					}
				}
			}
		})
	}
}
