package core

import (
	"math/rand"
	"testing"

	"repro/internal/faq"
	"repro/internal/hypergraph"
	"repro/internal/protocol"
	"repro/internal/relation"
	"repro/internal/semiring"
	"repro/internal/topology"
)

var sb = semiring.Bool{}

func starEngine(t *testing.T, g *topology.Graph, n int, output int) *Engine[bool] {
	t.Helper()
	h := hypergraph.ExampleH1()
	factors := make([]*relation.Relation[bool], h.NumEdges())
	for i := range factors {
		b := relation.NewBuilder[bool](sb, h.Edge(i))
		for x := 0; x < n; x++ {
			b.AddOne(x, 0)
		}
		factors[i] = b.Build()
	}
	q := faq.NewBCQ(h, factors, n)
	e, err := New(q, g, protocol.Assignment{0, 1, 2, 3}, output)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineRunStarLine(t *testing.T) {
	n := 64
	e := starEngine(t, topology.Line(4), n, 1)
	ans, rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	v, _ := relation.ScalarValue(sb, ans)
	if !v {
		t.Error("BCQ = 0, want 1")
	}
	if rep.Rounds > n+8 {
		t.Errorf("rounds = %d, want ≈ N+2", rep.Rounds)
	}
}

func TestBoundsStarOnLine(t *testing.T) {
	// Table 1 row 1 instance: constant-degeneracy query on a line.
	n := 64
	e := starEngine(t, topology.Line(4), n, 1)
	b, err := e.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	if b.Y != 1 {
		t.Errorf("y = %d, want 1", b.Y)
	}
	if b.N2 != 0 {
		t.Errorf("n2 = %d, want 0 for acyclic", b.N2)
	}
	if b.Degeneracy != 1 || b.Arity != 2 {
		t.Errorf("d, r = %d, %d, want 1, 2", b.Degeneracy, b.Arity)
	}
	if b.MinCut != 1 {
		t.Errorf("MinCut = %d, want 1 on a line", b.MinCut)
	}
	if b.ST != 1 {
		t.Errorf("ST = %d, want 1 on a line", b.ST)
	}
	// UB ≈ y·(N·r + Δ); LB = (y+n2)·N/MinCut = N.
	if b.Lower != float64(n) {
		t.Errorf("Lower = %v, want %d", b.Lower, n)
	}
	if b.Upper < n || b.Upper > 3*n+10 {
		t.Errorf("Upper = %d, want within [N, 3N+10]", b.Upper)
	}
	if g := b.Gap(); g <= 0 {
		t.Errorf("gap = %v, want positive", g)
	}
}

func TestBoundsCliqueVsLine(t *testing.T) {
	// The same query on the clique has MinCut 3 and a 2-tree packing:
	// both bounds drop relative to the line.
	n := 128
	line, _ := starEngine(t, topology.Line(4), n, 1).Bounds()
	clique, err := starEngine(t, topology.Clique(4), n, 1).Bounds()
	if err != nil {
		t.Fatal(err)
	}
	if clique.MinCut != 3 {
		t.Errorf("clique MinCut = %d, want 3", clique.MinCut)
	}
	if clique.ST < 2 {
		t.Errorf("clique ST = %d, want ≥ 2", clique.ST)
	}
	if clique.Upper >= line.Upper {
		t.Errorf("clique UB (%d) should beat line UB (%d)", clique.Upper, line.Upper)
	}
	if clique.Lower >= line.Lower {
		t.Errorf("clique LB (%v) should be below line LB (%v)", clique.Lower, line.Lower)
	}
}

func TestBoundsCyclicQuery(t *testing.T) {
	// A triangle query has y contributions from the core only.
	h := hypergraph.CycleGraph(3)
	n := 16
	factors := make([]*relation.Relation[bool], 3)
	for i := range factors {
		b := relation.NewBuilder[bool](sb, h.Edge(i))
		for x := 0; x < n; x++ {
			b.AddOne(x, (x+1)%n)
		}
		factors[i] = b.Build()
	}
	q := faq.NewBCQ(h, factors, n)
	g := topology.Ring(3)
	e, err := New(q, g, protocol.Assignment{0, 1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	if b.N2 != 3 {
		t.Errorf("n2(triangle) = %d, want 3", b.N2)
	}
	ans, rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := faq.BruteForce(q)
	if !relation.Equal(sb, ans, want) {
		t.Error("cyclic answer mismatch")
	}
	if rep.Rounds > 4*b.Upper+16 {
		t.Errorf("measured rounds %d far above UB %d", rep.Rounds, b.Upper)
	}
}

// TestMeasuredRoundsBracketedByBounds is the headline sanity check of
// Table 1: over random constant-degeneracy instances, the measured
// rounds of the main protocol sit between the (constant-scaled) lower
// and upper bound formulas.
func TestMeasuredRoundsBracketedByBounds(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 12; trial++ {
		nv := 3 + r.Intn(4)
		h := hypergraph.New(nv)
		for v := 1; v < nv; v++ {
			h.AddEdge(r.Intn(v), v)
		}
		n := 32
		factors := make([]*relation.Relation[bool], h.NumEdges())
		for i := range factors {
			b := relation.NewBuilder[bool](sb, h.Edge(i))
			for x := 0; x < n; x++ {
				b.AddOne(x, r.Intn(n))
			}
			factors[i] = b.Build()
		}
		q := faq.NewBCQ(h, factors, n)
		g := topology.Line(h.NumEdges())
		assign := make(protocol.Assignment, h.NumEdges())
		for i := range assign {
			assign[i] = i
		}
		e, err := New(q, g, assign, 0)
		if err != nil {
			t.Fatal(err)
		}
		_, rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Bounds()
		if err != nil {
			t.Fatal(err)
		}
		// Constants: the schedule may spend a small constant per star
		// above the formula, and the formula itself hides constants.
		if rep.Rounds > 6*b.Upper+40 {
			t.Errorf("trial %d: measured %d rounds >> UB %d", trial, rep.Rounds, b.Upper)
		}
	}
}

func TestNewRejectsInvalidSetup(t *testing.T) {
	h := hypergraph.PathGraph(3)
	factors := []*relation.Relation[bool]{
		relation.Empty[bool](h.Edge(0)),
		relation.Empty[bool](h.Edge(1)),
	}
	q := faq.NewBCQ(h, factors, 2)
	if _, err := New(q, topology.Line(2), protocol.Assignment{0}, 0); err == nil {
		t.Error("expected error for short assignment")
	}
}

func TestComputeBoundsSinglePlayer(t *testing.T) {
	h := hypergraph.ExampleH1()
	b, err := ComputeBounds(h, 16, topology.Line(2), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if b.Upper != 0 || b.MinCut != 0 {
		t.Errorf("single player bounds should be zero: %+v", b)
	}
	if _, err := ComputeBounds(h, 16, topology.Line(2), nil); err == nil {
		t.Error("expected error for empty K")
	}
}
