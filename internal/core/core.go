// Package core is the headline API of the reproduction of "Topology
// Dependent Bounds For FAQs" (Langberg, Li, Mani Jayaraman, Rudra;
// PODS 2019): given an FAQ query, a network topology, and an assignment
// of input functions to players, it
//
//   - executes the paper's protocols on the synchronous simulator and
//     reports the exact round/bit cost (Theorems 4.1, 5.1, 5.2, F.1,
//     G.4), and
//   - evaluates the paper's closed-form upper and lower bound formulas
//     (internal-node-width y(H), core size n₂(H), MinCut(G,K), Steiner
//     packing and τ_MCF terms) so measured rounds can be compared
//     against theory.
package core

import (
	"fmt"

	"repro/internal/faq"
	"repro/internal/flow"
	"repro/internal/ghd"
	"repro/internal/hypergraph"
	"repro/internal/protocol"
	"repro/internal/relation"
	"repro/internal/topology"
)

// Engine binds a query to a topology and an assignment and exposes the
// protocols and bounds.
type Engine[T any] struct {
	setup *protocol.Setup[T]
}

// New validates and returns an engine. assign[e] is the player holding
// factor e; output is the player that must learn the answer.
func New[T any](q *faq.Query[T], g *topology.Graph, assign protocol.Assignment, output int) (*Engine[T], error) {
	s := &protocol.Setup[T]{Q: q, G: g, Assign: assign, Output: output}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Engine[T]{setup: s}, nil
}

// Setup exposes the underlying protocol setup (benchmarks tweak the
// channel width through it).
func (e *Engine[T]) Setup() *protocol.Setup[T] { return e.setup }

// Run executes the paper's main protocol (forest stars bottom-up +
// trivial core, Theorem 4.1/F.1/G.4).
func (e *Engine[T]) Run() (*relation.Relation[T], protocol.Report, error) {
	return protocol.Run(e.setup)
}

// RunTrivial executes the trivial protocol baseline (Lemma 3.1).
func (e *Engine[T]) RunTrivial() (*relation.Relation[T], protocol.Report, error) {
	return protocol.RunTrivial(e.setup)
}

// Bounds evaluates the closed-form bounds for this instance.
func (e *Engine[T]) Bounds() (*Bounds, error) {
	return ComputeBounds(e.setup.Q.H, e.setup.Q.MaxFactorSize(), e.setup.G, e.setup.Players())
}

// Bounds packages the paper's structural parameters and round bounds for
// one (H, G, K, N) instance.
type Bounds struct {
	// Structural parameters of the query hypergraph.
	Y          int // internal-node-width y(H), Definition 2.9
	N2         int // n₂(H) = |V(C(H))| (0 for acyclic H), Definition 3.1
	Degeneracy int // d, Definition 3.3
	Arity      int // r
	// Parameters of the network.
	MinCut int // MinCut(G, K), Definition 3.6
	Delta  int // the Δ minimizing the Theorem 3.11 term
	ST     int // ST(G, K, Δ) at that Δ
	N      int // max factor size
	// Upper is the deterministic upper bound of Theorem 4.1/F.1:
	// y·(N·r/ST + Δ) + τ_MCF(G, K, n₂·d·N) rounds.
	Upper int
	// Lower is the randomized lower bound of Theorem 4.4/F.9 with
	// constants and polylogs dropped: for simple graphs
	// (y + n₂)·N / MinCut; for arity-r hypergraphs
	// (y/r + n₂/(d·r))·N / MinCut.
	Lower float64
	// LowerTilde divides Lower by the paper's Ω̃ log factors
	// log₂N · log₂MinCut · log₂n₂ (each at least 1).
	LowerTilde float64
}

// Gap returns Upper / LowerTilde, the measured counterpart of the
// paper's Table 1 gap column.
func (b *Bounds) Gap() float64 {
	if b.LowerTilde <= 0 {
		return 0
	}
	return float64(b.Upper) / b.LowerTilde
}

// ComputeBounds evaluates every formula for the instance. K is the
// player set; N the maximum factor size.
func ComputeBounds(h *hypergraph.Hypergraph, n int, g *topology.Graph, K []int) (*Bounds, error) {
	if len(K) == 0 {
		return nil, fmt.Errorf("core: empty player set")
	}
	b := &Bounds{
		Degeneracy: hypergraph.Degeneracy(h),
		Arity:      h.Arity(),
		N:          n,
	}
	gd, err := ghd.Minimize(h)
	if err != nil {
		return nil, err
	}
	b.Y = gd.InternalNodes()
	b.N2 = hypergraph.Decompose(h).N2()

	if len(K) == 1 {
		// Single player: everything is local.
		b.MinCut = 0
		return b, nil
	}
	b.MinCut, _, err = flow.MinCutSeparating(g, K)
	if err != nil {
		return nil, err
	}
	delta, trees, perStar, err := flow.BestDelta(g, K, n*b.Arity)
	if err != nil {
		return nil, err
	}
	b.Delta = delta
	b.ST = len(trees)
	b.Upper = b.Y * perStar
	if b.N2 > 0 {
		tau, _, err := flow.TauMCF(g, K, b.N2*b.Degeneracy*n)
		if err != nil {
			return nil, err
		}
		b.Upper += tau
	}
	if b.Arity <= 2 {
		b.Lower = float64((b.Y+b.N2)*n) / float64(b.MinCut)
	} else {
		d := float64(b.Degeneracy)
		r := float64(b.Arity)
		b.Lower = (float64(b.Y)/r + float64(b.N2)/(d*r)) * float64(n) / float64(b.MinCut)
	}
	b.LowerTilde = b.Lower / (logAtLeast1(n) * logAtLeast1(b.MinCut) * logAtLeast1(b.N2))
	return b, nil
}

func logAtLeast1(x int) float64 {
	l := 0.0
	for v := x; v > 1; v >>= 1 {
		l++
	}
	if l < 1 {
		return 1
	}
	return l
}
