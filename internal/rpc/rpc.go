// Package rpc is the cluster's wire transport: length-prefixed binary
// frames over TCP. A frame carries an opcode, two small integer
// operands, and an opaque body (the cluster layer puts the packed-key
// relation encodings there), so the framing itself stays oblivious to
// the protocol running over it.
//
// Wire layout, big-endian:
//
//	[payload length u32][kind u8][a i32][b i32][body ...]
//
// where the payload length counts everything after the length word
// (9 header bytes + the body). Frames above MaxFrameBytes are rejected
// on both ends, so a corrupt length word cannot trigger an unbounded
// allocation.
//
// Clients speak strict request/response over a connection: RoundTrip
// holds the connection for one exchange, applies the per-message
// deadline (the tighter of the connection default and the context
// deadline), and aborts the blocking read promptly when the context is
// canceled. Any exchange error poisons the connection — the reply
// stream may be desynchronized — so callers discard it and dial anew.
//
// The rpc.dial / rpc.send / rpc.recv failpoints fire on the client
// side only: an injected failure surfaces as a typed error at the
// coordinator, never as an unexplained EOF fabricated by the server.
package rpc

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// MaxFrameBytes bounds a single frame's payload (header + body). The
// largest legitimate frames are relation shards; 256 MiB is far above
// any admissible shard and small enough to make a corrupted length
// word harmless.
const MaxFrameBytes = 1 << 28

// frameHeaderBytes is the fixed header after the length word: kind (1)
// plus the two int32 operands (8).
const frameHeaderBytes = 9

// HeaderBytes is the full per-frame wire overhead: the length word plus
// the fixed header. Byte accounting in the cluster layer uses it to
// separate framing overhead from relation payload.
const HeaderBytes = 4 + frameHeaderBytes

// Chaos failpoints on the client-side exchange path.
var (
	dialSite = fault.Register("rpc.dial")
	sendSite = fault.Register("rpc.send")
	recvSite = fault.Register("rpc.recv")
)

// ErrFrameTooLarge reports a frame whose payload exceeds MaxFrameBytes,
// on encode or decode.
var ErrFrameTooLarge = errors.New("rpc: frame exceeds size limit")

// Frame is one message: an opcode, two small operands (the cluster
// layer uses A for the GHD node and B for a child index or count), and
// an opaque body.
type Frame struct {
	Kind uint8
	A, B int32
	Body []byte
}

// WireBytes returns the frame's full encoded size including the length
// word.
func (f *Frame) WireBytes() int { return 4 + frameHeaderBytes + len(f.Body) }

// appendFrame encodes f onto dst.
func appendFrame(dst []byte, f *Frame) ([]byte, error) {
	if len(f.Body) > MaxFrameBytes-frameHeaderBytes {
		return dst, fmt.Errorf("%w: body %d bytes", ErrFrameTooLarge, len(f.Body))
	}
	n := uint32(frameHeaderBytes + len(f.Body))
	dst = binary.BigEndian.AppendUint32(dst, n)
	dst = append(dst, f.Kind)
	dst = binary.BigEndian.AppendUint32(dst, uint32(f.A))
	dst = binary.BigEndian.AppendUint32(dst, uint32(f.B))
	dst = append(dst, f.Body...)
	return dst, nil
}

// readFrame decodes one frame from r.
func readFrame(r *bufio.Reader) (*Frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < frameHeaderBytes {
		return nil, fmt.Errorf("rpc: short frame payload (%d bytes)", n)
	}
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("%w: payload %d bytes", ErrFrameTooLarge, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	f := &Frame{
		Kind: buf[0],
		A:    int32(binary.BigEndian.Uint32(buf[1:5])),
		B:    int32(binary.BigEndian.Uint32(buf[5:9])),
	}
	if n > frameHeaderBytes {
		f.Body = buf[frameHeaderBytes:]
	}
	return f, nil
}

// Conn is a client connection speaking strict request/response. It is
// safe for concurrent use; concurrent RoundTrips serialize on the
// connection.
type Conn struct {
	mu      sync.Mutex
	nc      net.Conn
	br      *bufio.Reader
	wbuf    []byte
	timeout time.Duration // per-message default deadline; 0 = none
	broken  atomic.Bool
	out, in atomic.Int64
}

// Dial connects to a cluster peer. msgTimeout, when positive, is both
// the dial timeout and the default per-message deadline of later
// RoundTrips (a context deadline tightens it further).
func Dial(ctx context.Context, addr string, msgTimeout time.Duration) (*Conn, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := dialSite.Hit(ctx); err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	d := net.Dialer{Timeout: msgTimeout}
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &Conn{nc: nc, br: bufio.NewReader(nc), timeout: msgTimeout}, nil
}

// Broken reports whether a previous exchange failed, leaving the reply
// stream in an unknown state. Broken connections must be discarded.
func (c *Conn) Broken() bool { return c.broken.Load() }

// Bytes returns the cumulative wire bytes written and read.
func (c *Conn) Bytes() (out, in int64) { return c.out.Load(), c.in.Load() }

// Close closes the underlying connection.
func (c *Conn) Close() error {
	c.broken.Store(true)
	return c.nc.Close()
}

// RoundTrip sends req and reads the single reply frame. On any error —
// injected fault, I/O failure, deadline, cancellation — the connection
// is poisoned and closed, because a half-written request or unread
// reply would desynchronize the next exchange. Timeouts caused by
// context cancellation surface as the context's error.
func (c *Conn) RoundTrip(ctx context.Context, req *Frame) (*Frame, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken.Load() {
		return nil, errors.New("rpc: round trip on broken connection")
	}
	fail := func(err error) (*Frame, error) {
		c.broken.Store(true)
		c.nc.Close()
		if ctxErr := ctx.Err(); ctxErr != nil && isTimeout(err) {
			// The cancellation watcher below aborts blocked I/O by
			// expiring the deadline; report the cause, not the mechanism.
			return nil, ctxErr
		}
		return nil, err
	}

	if err := sendSite.Hit(ctx); err != nil {
		return fail(fmt.Errorf("rpc: send: %w", err))
	}
	deadline := time.Time{}
	if c.timeout > 0 {
		deadline = time.Now().Add(c.timeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	if err := c.nc.SetDeadline(deadline); err != nil {
		return fail(fmt.Errorf("rpc: set deadline: %w", err))
	}
	// Abort blocked I/O promptly on cancellation by expiring the
	// deadline; fail() maps the resulting timeout back to ctx.Err().
	stop := context.AfterFunc(ctx, func() { c.nc.SetDeadline(time.Now()) })
	defer stop()

	buf, err := appendFrame(c.wbuf[:0], req)
	if err != nil {
		return fail(err)
	}
	c.wbuf = buf[:0]
	if _, err := c.nc.Write(buf); err != nil {
		return fail(fmt.Errorf("rpc: write: %w", err))
	}
	c.out.Add(int64(len(buf)))

	if err := recvSite.Hit(ctx); err != nil {
		return fail(fmt.Errorf("rpc: recv: %w", err))
	}
	resp, err := readFrame(c.br)
	if err != nil {
		return fail(fmt.Errorf("rpc: read: %w", err))
	}
	c.in.Add(int64(resp.WireBytes()))
	return resp, nil
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Handler serves one request frame and returns the reply frame.
// Handlers encode application errors into reply frames themselves; a
// nil reply closes the connection.
type Handler func(ctx context.Context, req *Frame) *Frame

// Server accepts connections and serves frames with a Handler, one
// request at a time per connection (matching the client's strict
// request/response discipline; concurrency comes from multiple
// connections).
type Server struct {
	ln      net.Listener
	handler Handler
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
}

// Serve listens on addr (":0" picks a free port — use Addr to learn it)
// and serves frames until Close.
func Serve(addr string, handler Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		ln:      ln,
		handler: handler,
		ctx:     ctx,
		cancel:  cancel,
		conns:   make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener, closes every live connection, and waits for
// the serving goroutines to drain.
func (s *Server) Close() error {
	s.cancel()
	err := s.ln.Close()
	s.mu.Lock()
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed (or fatally broken): stop serving
		}
		s.mu.Lock()
		s.conns[nc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(nc)
	}
}

func (s *Server) serveConn(nc net.Conn) {
	defer s.wg.Done()
	defer func() {
		nc.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(nc)
	var wbuf []byte
	for {
		req, err := readFrame(br)
		if err != nil {
			return // client went away or sent garbage: drop the conn
		}
		resp := s.handler(s.ctx, req)
		if resp == nil {
			return
		}
		wbuf, err = appendFrame(wbuf[:0], resp)
		if err != nil {
			return
		}
		if _, err := nc.Write(wbuf); err != nil {
			return
		}
	}
}
