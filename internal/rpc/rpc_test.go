package rpc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []Frame{
		{Kind: 1},
		{Kind: 7, A: 3, B: -1},
		{Kind: 0x7f, A: -2147483648, B: 2147483647, Body: []byte("hello")},
		{Kind: 5, Body: make([]byte, 1<<16)},
	}
	for i, f := range cases {
		buf, err := appendFrame(nil, &f)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		if len(buf) != f.WireBytes() {
			t.Fatalf("case %d: WireBytes %d != encoded %d", i, f.WireBytes(), len(buf))
		}
		got, err := readFrame(bufio.NewReader(bytes.NewReader(buf)))
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if got.Kind != f.Kind || got.A != f.A || got.B != f.B || !bytes.Equal(got.Body, f.Body) {
			t.Fatalf("case %d: round trip mismatch: %+v != %+v", i, got, f)
		}
	}
}

func TestFrameSizeLimit(t *testing.T) {
	f := &Frame{Kind: 1, Body: make([]byte, MaxFrameBytes)}
	if _, err := appendFrame(nil, f); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized encode returned %v, want ErrFrameTooLarge", err)
	}
	// A corrupt length word must be rejected before allocation.
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], MaxFrameBytes+1)
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(buf[:]))); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized decode returned %v, want ErrFrameTooLarge", err)
	}
	// A payload length below the fixed header is garbage, not a frame.
	binary.BigEndian.PutUint32(buf[:], frameHeaderBytes-1)
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(buf[:]))); err == nil {
		t.Fatal("short payload length was accepted")
	}
}

// echoServer serves frames that echo the request with Kind+1.
func echoServer(t *testing.T) *Server {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", func(_ context.Context, req *Frame) *Frame {
		return &Frame{Kind: req.Kind + 1, A: req.A, B: req.B, Body: req.Body}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestClientServerExchange(t *testing.T) {
	srv := echoServer(t)
	c, err := Dial(context.Background(), srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		req := &Frame{Kind: uint8(i), A: int32(i), B: int32(-i), Body: bytes.Repeat([]byte{byte(i)}, i*100)}
		resp, err := c.RoundTrip(context.Background(), req)
		if err != nil {
			t.Fatalf("exchange %d: %v", i, err)
		}
		if resp.Kind != req.Kind+1 || resp.A != req.A || resp.B != req.B || !bytes.Equal(resp.Body, req.Body) {
			t.Fatalf("exchange %d: bad echo %+v", i, resp)
		}
	}
	out, in := c.Bytes()
	if out == 0 || in == 0 {
		t.Fatalf("byte counters did not move: out=%d in=%d", out, in)
	}
	if c.Broken() {
		t.Fatal("healthy connection reported broken")
	}
}

func TestRoundTripMessageTimeout(t *testing.T) {
	// The handler never replies (it waits on server shutdown), so the
	// per-message deadline must fire.
	srv, err := Serve("127.0.0.1:0", func(ctx context.Context, _ *Frame) *Frame {
		<-ctx.Done()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(context.Background(), srv.Addr(), 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.RoundTrip(context.Background(), &Frame{Kind: 1}); err == nil {
		t.Fatal("stalled exchange returned nil error")
	} else if !isTimeout(err) {
		t.Fatalf("stalled exchange returned %v, want a timeout", err)
	}
	if !c.Broken() {
		t.Fatal("failed exchange left the connection usable")
	}
	if _, err := c.RoundTrip(context.Background(), &Frame{Kind: 1}); err == nil {
		t.Fatal("broken connection accepted another exchange")
	}
}

func TestRoundTripContextCancel(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(ctx context.Context, _ *Frame) *Frame {
		<-ctx.Done()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(context.Background(), srv.Addr(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	_, err = c.RoundTrip(ctx, &Frame{Kind: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled exchange returned %v, want context.Canceled", err)
	}
	// The minute-long message timeout must not gate cancellation.
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
}

func TestServerCloseDropsConns(t *testing.T) {
	srv := echoServer(t)
	c, err := Dial(context.Background(), srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.RoundTrip(context.Background(), &Frame{Kind: 1}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RoundTrip(context.Background(), &Frame{Kind: 2}); err == nil {
		t.Fatal("exchange against a closed server succeeded")
	}
}
