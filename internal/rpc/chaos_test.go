package rpc

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/fault"
)

// TestChaosExchange sweeps the client-side transport failpoints: an
// injected drop on any of rpc.dial / rpc.send / rpc.recv surfaces as a
// typed error matching fault.ErrInjected (never a hang or a fabricated
// EOF), an injected delay is absorbed while per-message deadlines and
// context cancellation stay honored, and an injected cancel surfaces
// promptly as context.Canceled. After every fault the next exchange on
// a fresh connection succeeds.
func TestChaosExchange(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	srv := echoServer(t)

	dial := func(t *testing.T) *Conn {
		t.Helper()
		c, err := Dial(context.Background(), srv.Addr(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	exchange := func(c *Conn) error {
		_, err := c.RoundTrip(context.Background(), &Frame{Kind: 1, Body: []byte("x")})
		return err
	}

	t.Run("drop/dial", func(t *testing.T) {
		fault.Enable("rpc.dial", fault.Config{Mode: fault.ModeError, Once: true})
		defer fault.Reset()
		if _, err := Dial(context.Background(), srv.Addr(), time.Second); !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("injected dial fault returned %v, want ErrInjected", err)
		}
		// Once: the next dial succeeds without waiting out a retry loop.
		if err := exchange(dial(t)); err != nil {
			t.Fatalf("post-fault dial failed: %v", err)
		}
	})

	for _, site := range []string{"rpc.send", "rpc.recv"} {
		t.Run("drop/"+site, func(t *testing.T) {
			c := dial(t)
			fault.Enable(site, fault.Config{Mode: fault.ModeError, Once: true})
			defer fault.Reset()
			if err := exchange(c); !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("injected %s fault returned %v, want ErrInjected", site, err)
			}
			if !c.Broken() {
				t.Fatalf("%s fault left the connection unpoisoned", site)
			}
			if err := exchange(dial(t)); err != nil {
				t.Fatalf("fresh connection after %s fault failed: %v", site, err)
			}
		})

		t.Run("delay/"+site, func(t *testing.T) {
			c := dial(t)
			fault.Enable(site, fault.Config{Mode: fault.ModeDelay, Delay: 30 * time.Millisecond})
			defer fault.Reset()
			t0 := time.Now()
			if err := exchange(c); err != nil {
				t.Fatalf("delayed exchange failed: %v", err)
			}
			if d := time.Since(t0); d < 30*time.Millisecond {
				t.Fatalf("delay did not bite: %v", d)
			}
		})

		t.Run("delay-cancel/"+site, func(t *testing.T) {
			// A long injected stall must not outlive the caller's context:
			// the delay aborts on cancellation and the exchange reports the
			// context's error.
			c := dial(t)
			fault.Enable(site, fault.Config{Mode: fault.ModeDelay, Delay: time.Minute})
			defer fault.Reset()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			t0 := time.Now()
			_, err := c.RoundTrip(ctx, &Frame{Kind: 1})
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("stalled exchange returned %v, want DeadlineExceeded", err)
			}
			if d := time.Since(t0); d > 5*time.Second {
				t.Fatalf("cancellation waited out the injected delay: %v", d)
			}
		})

		t.Run("cancel/"+site, func(t *testing.T) {
			c := dial(t)
			fault.Enable(site, fault.Config{Mode: fault.ModeCancel, Once: true})
			defer fault.Reset()
			if err := exchange(c); !errors.Is(err, context.Canceled) {
				t.Fatalf("injected cancel returned %v, want context.Canceled", err)
			}
			if err := exchange(dial(t)); err != nil {
				t.Fatalf("fresh connection after cancel failed: %v", err)
			}
		})
	}
}
