// Package fault is the deterministic failpoint registry behind the
// repository's chaos testing: hot layers register named sites (relation
// kernels, exec task dispatch, the plan-compile path, the service solve
// path, the netsim ledger, faqd handlers) and, when a site is armed, a
// hit injects one of four behaviors — a typed error, a panic, a delay,
// or a context cancellation. Disarmed sites cost a single atomic pointer
// load, so production binaries pay nothing for the instrumentation.
//
// Arming is explicit and deterministic: test hooks (EnableSpec / Enable
// / Disable / Reset) or the FAQ_FAILPOINTS environment variable, parsed
// once at init. Triggers are counter-based per site — "fire always",
// "fire once", or "fire every k-th evaluation" — never clock- or
// randomness-driven, so a chaos run replays identically given the same
// hit order.
//
// Spec grammar (also the FAQ_FAILPOINTS value, entries ';'-separated):
//
//	<site>=<mode>[:<arg>][@<pred>]
//
//	mode: error | panic | delay | cancel
//	arg:  delay duration ("5ms") for delay; small integer for
//	      domain-specific sites (e.g. netsim round delay)
//	pred: always (default) | once | 1in<k>
//
// Sites fall into two call shapes. Error-capable sites call Hit(ctx),
// which returns a typed *InjectedError (mode error), panics with an
// *InjectedPanic (mode panic), sleeps respecting ctx (mode delay), or
// returns context.Canceled (mode cancel). Value-returning kernels with
// no error path call Inject(), where every failing mode panics — the
// service boundary recovers the panic into a typed internal error, which
// is exactly the containment contract the chaos suite asserts.
// Domain-specific sites (netsim message drop/duplicate/delay) call
// Fire() directly and interpret the config themselves.
package fault

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// metricFired counts failpoint firings per site on the process-global
// registry, so a chaos run against a live faqd shows up on /metrics.
// Children are pre-bound at Register time; the disarmed hot path is
// untouched (still one atomic pointer load).
var metricFired = obs.Default().NewCounterVec("faq_fault_fired_total",
	"Failpoint hits that actually fired (armed sites only), by site.",
	"site")

// ErrInjected matches every error produced by an armed failpoint
// (errors.Is). The concrete type is *InjectedError, carrying the site.
var ErrInjected = errors.New("fault: injected failure")

// InjectedError is the typed error of an error-mode failpoint hit.
type InjectedError struct {
	Site string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected error at failpoint %q", e.Site)
}

// Is makes errors.Is(err, ErrInjected) succeed on InjectedError values.
func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

// InjectedPanic is the panic payload of a panic-mode hit (and of every
// failing mode at ctx-less Inject sites). The service boundary recovers
// it into a typed internal error that records the site.
type InjectedPanic struct {
	Site string
}

func (p *InjectedPanic) String() string {
	return fmt.Sprintf("fault: injected panic at failpoint %q", p.Site)
}

// Mode selects the behavior of an armed site.
type Mode uint8

const (
	// ModeOff leaves the site disarmed (the zero Config).
	ModeOff Mode = iota
	// ModeError returns a typed *InjectedError from Hit (panics at
	// Inject-only sites).
	ModeError
	// ModePanic panics with an *InjectedPanic.
	ModePanic
	// ModeDelay sleeps for Config.Delay (aborting early on ctx
	// cancellation at Hit sites).
	ModeDelay
	// ModeCancel returns the context's error — context.Canceled when the
	// ctx is live or absent — simulating a cancellation surfacing at the
	// site.
	ModeCancel
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeDelay:
		return "delay"
	case ModeCancel:
		return "cancel"
	}
	return "off"
}

// defaultDelay is the sleep of a delay-mode site with no explicit
// duration — long enough to open race windows, short enough for sweeps.
const defaultDelay = time.Millisecond

// Config is one site's armed behavior plus its deterministic trigger.
type Config struct {
	Mode  Mode
	Delay time.Duration // ModeDelay sleep; defaultDelay when zero
	Arg   int           // free integer for domain-specific sites
	Once  bool          // fire on the first evaluation only
	OneIn int           // fire on evaluations 1, 1+k, 1+2k, ... (≤ 1: every)
}

// Site is one named failpoint. Obtain sites with Register at package
// init; hits on a disarmed site are a single atomic pointer load.
type Site struct {
	name   string
	cfg    atomic.Pointer[Config]
	hits   atomic.Uint64 // evaluations while armed (trigger counter)
	fired  atomic.Uint64 // hits that actually fired
	metric *obs.Counter  // pre-bound faq_fault_fired_total{site=name}
}

var (
	regMu   sync.Mutex
	sites   = make(map[string]*Site)
	pending = make(map[string]Config) // specs armed before registration
)

// Register returns the failpoint named name, creating it on first use
// (idempotent, safe for concurrent init). If a spec for the name was
// enabled before registration (e.g. FAQ_FAILPOINTS parsed at init before
// the registering package initialized), it arms immediately.
func Register(name string) *Site {
	regMu.Lock()
	defer regMu.Unlock()
	if s, ok := sites[name]; ok {
		return s
	}
	s := &Site{name: name, metric: metricFired.With(name)}
	if cfg, ok := pending[name]; ok {
		delete(pending, name)
		c := cfg
		s.cfg.Store(&c)
	}
	sites[name] = s
	return s
}

// Name returns the site's registered name.
func (s *Site) Name() string { return s.name }

// Fired reports how many times the site has fired since it was last
// armed — the chaos suite's "did this sweep actually reach the site"
// signal.
func (s *Site) Fired() uint64 { return s.fired.Load() }

// Fire evaluates the site's trigger: it returns the armed Config and
// true when the site fires on this evaluation. Generic sites go through
// Hit/Inject; domain-specific sites (netsim) interpret the Config
// themselves. Disarmed sites return immediately after one atomic load.
func (s *Site) Fire() (Config, bool) {
	cfg := s.cfg.Load()
	if cfg == nil {
		return Config{}, false
	}
	n := s.hits.Add(1)
	if cfg.Once && n != 1 {
		return Config{}, false
	}
	if cfg.OneIn > 1 && (n-1)%uint64(cfg.OneIn) != 0 {
		return Config{}, false
	}
	s.fired.Add(1)
	s.metric.Add(1)
	return *cfg, true
}

// Hit applies the generic failpoint semantics at an error-capable call
// site. ctx may be nil (background): delay then sleeps uninterruptibly
// and cancel returns context.Canceled.
func (s *Site) Hit(ctx context.Context) error {
	if s.cfg.Load() == nil {
		return nil
	}
	return s.hitSlow(ctx)
}

func (s *Site) hitSlow(ctx context.Context) error {
	cfg, ok := s.Fire()
	if !ok {
		return nil
	}
	switch cfg.Mode {
	case ModeError:
		return &InjectedError{Site: s.name}
	case ModePanic:
		panic(&InjectedPanic{Site: s.name})
	case ModeDelay:
		d := cfg.Delay
		if d <= 0 {
			d = defaultDelay
		}
		if ctx == nil {
			time.Sleep(d)
			return nil
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	case ModeCancel:
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		return context.Canceled
	}
	return nil
}

// Inject applies the failpoint semantics at a ctx-less call site with no
// error return (the relation kernels): delay sleeps; error, panic, and
// cancel all panic with an *InjectedPanic, to be recovered and typed at
// the service boundary.
func (s *Site) Inject() {
	if s.cfg.Load() == nil {
		return
	}
	cfg, ok := s.Fire()
	if !ok {
		return
	}
	if cfg.Mode == ModeDelay {
		d := cfg.Delay
		if d <= 0 {
			d = defaultDelay
		}
		time.Sleep(d)
		return
	}
	panic(&InjectedPanic{Site: s.name})
}

// Enable arms the named site with cfg (Mode ModeOff disarms). Unknown
// names are held pending and arm when the site registers, so specs can
// be applied before the registering package's init runs.
func Enable(name string, cfg Config) {
	regMu.Lock()
	defer regMu.Unlock()
	s, ok := sites[name]
	if !ok {
		if cfg.Mode == ModeOff {
			delete(pending, name)
		} else {
			pending[name] = cfg
		}
		return
	}
	if cfg.Mode == ModeOff {
		s.cfg.Store(nil)
	} else {
		c := cfg
		s.cfg.Store(&c)
	}
	s.hits.Store(0)
	s.fired.Store(0)
}

// Disable disarms the named site.
func Disable(name string) { Enable(name, Config{}) }

// Reset disarms every site (registered and pending) and clears all
// trigger counters — the between-cases hook of the chaos suite.
func Reset() {
	regMu.Lock()
	defer regMu.Unlock()
	pending = make(map[string]Config)
	for _, s := range sites {
		s.cfg.Store(nil)
		s.hits.Store(0)
		s.fired.Store(0)
	}
}

// Names returns every registered site name, sorted — the sweep universe
// of the chaos suite (sites registered by packages linked into the test
// binary).
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(sites))
	for name := range sites {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the registered site by name.
func Lookup(name string) (*Site, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	s, ok := sites[name]
	return s, ok
}

// EnableSpec parses and applies a spec string — one or more
// ';'-separated "<site>=<mode>[:<arg>][@<pred>]" entries (the
// FAQ_FAILPOINTS grammar). Empty entries are skipped.
func EnableSpec(spec string) error {
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rhs, ok := strings.Cut(entry, "=")
		name, rhs = strings.TrimSpace(name), strings.TrimSpace(rhs)
		if !ok || name == "" || rhs == "" {
			return fmt.Errorf("fault: malformed failpoint entry %q (want site=mode[:arg][@pred])", entry)
		}
		cfg, err := parseConfig(rhs)
		if err != nil {
			return fmt.Errorf("fault: failpoint %q: %w", name, err)
		}
		Enable(name, cfg)
	}
	return nil
}

func parseConfig(rhs string) (Config, error) {
	var cfg Config
	modeArg := rhs
	if at := strings.LastIndex(rhs, "@"); at >= 0 {
		modeArg = rhs[:at]
		switch pred := strings.TrimSpace(rhs[at+1:]); {
		case pred == "always" || pred == "":
		case pred == "once":
			cfg.Once = true
		case strings.HasPrefix(pred, "1in"):
			k, err := strconv.Atoi(pred[len("1in"):])
			if err != nil || k < 1 {
				return cfg, fmt.Errorf("bad predicate %q (want 1in<k>)", pred)
			}
			cfg.OneIn = k
		default:
			return cfg, fmt.Errorf("unknown predicate %q (want always, once, or 1in<k>)", pred)
		}
	}
	mode, arg, _ := strings.Cut(modeArg, ":")
	switch strings.TrimSpace(mode) {
	case "error":
		cfg.Mode = ModeError
	case "panic":
		cfg.Mode = ModePanic
	case "delay":
		cfg.Mode = ModeDelay
	case "cancel":
		cfg.Mode = ModeCancel
	case "off":
		cfg.Mode = ModeOff
	default:
		return cfg, fmt.Errorf("unknown mode %q (want error, panic, delay, cancel, or off)", mode)
	}
	if arg = strings.TrimSpace(arg); arg != "" {
		if d, err := time.ParseDuration(arg); err == nil {
			cfg.Delay = d
		} else if k, err := strconv.Atoi(arg); err == nil {
			cfg.Arg = k
		} else {
			return cfg, fmt.Errorf("bad argument %q (want a duration or an integer)", arg)
		}
	}
	return cfg, nil
}

func init() {
	// FAQ_FAILPOINTS arms sites at process start — the ops hook for
	// chaos-testing a live faqd. Parse errors are fatal by design: a
	// silently ignored chaos spec would report a clean run that tested
	// nothing.
	if spec := os.Getenv("FAQ_FAILPOINTS"); spec != "" {
		if err := EnableSpec(spec); err != nil {
			panic(err)
		}
	}
}
