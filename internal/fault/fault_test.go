package fault

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisarmedSiteIsFree(t *testing.T) {
	defer Reset()
	s := Register("test.disarmed")
	for i := 0; i < 1000; i++ {
		if err := s.Hit(nil); err != nil {
			t.Fatalf("disarmed hit returned %v", err)
		}
	}
	s.Inject() // must be a no-op
	if got := s.Fired(); got != 0 {
		t.Fatalf("disarmed site fired %d times", got)
	}
}

func TestErrorModeIsTyped(t *testing.T) {
	defer Reset()
	s := Register("test.error")
	Enable("test.error", Config{Mode: ModeError})
	err := s.Hit(context.Background())
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("error-mode hit: %v, want ErrInjected", err)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Site != "test.error" {
		t.Fatalf("error carries site %v, want test.error", err)
	}
}

func TestPanicModeCarriesSite(t *testing.T) {
	defer Reset()
	s := Register("test.panic")
	Enable("test.panic", Config{Mode: ModePanic})
	defer func() {
		r := recover()
		ip, ok := r.(*InjectedPanic)
		if !ok || ip.Site != "test.panic" {
			t.Fatalf("recovered %v, want *InjectedPanic{test.panic}", r)
		}
	}()
	_ = s.Hit(nil)
	t.Fatal("panic-mode hit did not panic")
}

func TestInjectPanicsOnErrorMode(t *testing.T) {
	defer Reset()
	s := Register("test.inject")
	Enable("test.inject", Config{Mode: ModeError})
	defer func() {
		if _, ok := recover().(*InjectedPanic); !ok {
			t.Fatal("Inject with error mode must panic (no error path at the site)")
		}
	}()
	s.Inject()
	t.Fatal("Inject did not panic")
}

func TestCancelMode(t *testing.T) {
	defer Reset()
	s := Register("test.cancel")
	Enable("test.cancel", Config{Mode: ModeCancel})
	if err := s.Hit(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel-mode hit on live ctx: %v, want context.Canceled", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	if err := s.Hit(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancel-mode hit on expired ctx: %v, want the ctx error", err)
	}
}

func TestDelayModeRespectsCtx(t *testing.T) {
	defer Reset()
	s := Register("test.delay")
	Enable("test.delay", Config{Mode: ModeDelay, Delay: 10 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	err := s.Hit(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("delay-mode hit under cancel: %v, want context.Canceled", err)
	}
	if el := time.Since(t0); el > 5*time.Second {
		t.Fatalf("delay did not abort on cancel (took %v)", el)
	}
}

func TestTriggerPredicates(t *testing.T) {
	defer Reset()
	s := Register("test.pred")

	Enable("test.pred", Config{Mode: ModeError, Once: true})
	if err := s.Hit(nil); err == nil {
		t.Fatal("once: first hit did not fire")
	}
	for i := 0; i < 10; i++ {
		if err := s.Hit(nil); err != nil {
			t.Fatalf("once: hit %d fired again: %v", i+2, err)
		}
	}

	Enable("test.pred", Config{Mode: ModeError, OneIn: 3})
	var fired int
	for i := 0; i < 9; i++ {
		if s.Hit(nil) != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("1in3 over 9 hits fired %d times, want 3", fired)
	}
	if s.Fired() != 3 {
		t.Fatalf("Fired() = %d, want 3", s.Fired())
	}
}

func TestEnableSpec(t *testing.T) {
	defer Reset()
	s := Register("test.spec")
	cases := []struct {
		spec string
		want Config
	}{
		{"test.spec=error", Config{Mode: ModeError}},
		{"test.spec=panic@once", Config{Mode: ModePanic, Once: true}},
		{"test.spec=delay:5ms@1in4", Config{Mode: ModeDelay, Delay: 5 * time.Millisecond, OneIn: 4}},
		{"test.spec=delay:7", Config{Mode: ModeDelay, Arg: 7}},
		{" test.spec = cancel ", Config{Mode: ModeCancel}},
	}
	for _, tc := range cases {
		if err := EnableSpec(tc.spec); err != nil {
			t.Fatalf("EnableSpec(%q): %v", tc.spec, err)
		}
		got := s.cfg.Load()
		if got == nil || *got != tc.want {
			t.Errorf("EnableSpec(%q) armed %+v, want %+v", tc.spec, got, tc.want)
		}
	}
	for _, bad := range []string{"nomode", "x=", "=error", "x=flood", "x=error@1in0", "x=delay:zzz"} {
		if err := EnableSpec(bad); err == nil {
			t.Errorf("EnableSpec(%q) accepted malformed spec", bad)
		}
	}
	// Multi-entry spec with empties.
	if err := EnableSpec("test.spec=error; ;test.spec=off"); err != nil {
		t.Fatalf("multi-entry spec: %v", err)
	}
	if s.cfg.Load() != nil {
		t.Error("mode off did not disarm the site")
	}
}

func TestPendingSpecArmsAtRegister(t *testing.T) {
	defer Reset()
	if err := EnableSpec("test.late=error"); err != nil {
		t.Fatal(err)
	}
	s := Register("test.late")
	if err := s.Hit(nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("pending spec did not arm at registration: %v", err)
	}
}

func TestRegisterIdempotent(t *testing.T) {
	defer Reset()
	a := Register("test.same")
	b := Register("test.same")
	if a != b {
		t.Fatal("Register returned distinct sites for one name")
	}
}

func TestConcurrentHits(t *testing.T) {
	defer Reset()
	s := Register("test.conc")
	Enable("test.conc", Config{Mode: ModeError, OneIn: 2})
	var wg sync.WaitGroup
	var fired sync.Map
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 0
			for i := 0; i < 250; i++ {
				if s.Hit(nil) != nil {
					n++
				}
			}
			fired.Store(g, n)
		}(g)
	}
	wg.Wait()
	total := 0
	fired.Range(func(_, v any) bool { total += v.(int); return true })
	if total != 1000 {
		t.Fatalf("1in2 over 2000 concurrent hits fired %d times, want 1000", total)
	}
}
