// Package cli holds the input-parsing helpers shared by the internal
// command-line harnesses (cmd/ghdtool, cmd/faqload): the ';'/','-separated
// query hypergraph syntax and the kind:size topology syntax. Parsers
// return errors — never panic — so commands can print a usage message and
// exit nonzero on malformed input. (cmd/faqrun is a client of the public
// faqs façade and carries its own copy of this tiny grammar; keep the
// two in sync when the syntax changes.)
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/hypergraph"
	"repro/internal/topology"
)

// ParseQuery parses a query hypergraph given as ';'-separated hyperedges,
// each a ','-separated list of vertex names:
//
//	A,B;A,C;A,D
//
// Whitespace around names is ignored; empty hyperedges and an empty spec
// are errors.
func ParseQuery(spec string) (*hypergraph.Hypergraph, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("empty query (want e.g. 'A,B;A,C')")
	}
	b := hypergraph.NewBuilder()
	for _, edge := range strings.Split(spec, ";") {
		var names []string
		for _, v := range strings.Split(edge, ",") {
			if v = strings.TrimSpace(v); v != "" {
				names = append(names, v)
			}
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("empty hyperedge in query %q", spec)
		}
		b.Edge(names...)
	}
	return b.Build(), nil
}

// ParseTopology parses a network topology spec of the form kind:size:
//
//	line:4 | clique:5 | star:6 | ring:8 | grid:3x4
//
// Sizes must be positive (grid: both dimensions).
func ParseTopology(spec string) (*topology.Graph, error) {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("topology %q must be kind:size (line:4 | clique:5 | star:6 | ring:8 | grid:3x4)", spec)
	}
	kind, size := parts[0], parts[1]
	if kind == "grid" {
		dims := strings.SplitN(size, "x", 2)
		if len(dims) != 2 {
			return nil, fmt.Errorf("grid size %q must be RxC", size)
		}
		rows, err := strconv.Atoi(dims[0])
		if err != nil {
			return nil, fmt.Errorf("grid rows %q: %v", dims[0], err)
		}
		cols, err := strconv.Atoi(dims[1])
		if err != nil {
			return nil, fmt.Errorf("grid cols %q: %v", dims[1], err)
		}
		if rows < 1 || cols < 1 {
			return nil, fmt.Errorf("grid %dx%d: both dimensions must be positive", rows, cols)
		}
		return topology.Grid(rows, cols), nil
	}
	k, err := strconv.Atoi(size)
	if err != nil {
		return nil, fmt.Errorf("topology size %q: %v", size, err)
	}
	if k < 1 {
		return nil, fmt.Errorf("topology size %d must be positive", k)
	}
	switch kind {
	case "line":
		return topology.Line(k), nil
	case "clique":
		return topology.Clique(k), nil
	case "star":
		return topology.Star(k), nil
	case "ring":
		return topology.Ring(k), nil
	}
	return nil, fmt.Errorf("unknown topology kind %q (have line, clique, star, ring, grid)", kind)
}
