package cli

import (
	"strings"
	"testing"
)

func TestParseQuery(t *testing.T) {
	h, err := ParseQuery("A,B; A,C ;A,D")
	if err != nil {
		t.Fatalf("ParseQuery: %v", err)
	}
	if h.NumEdges() != 3 || h.NumVertices() != 4 {
		t.Fatalf("got %d edges / %d vertices, want 3 / 4", h.NumEdges(), h.NumVertices())
	}
	if got := h.Edge(0); len(got) != 2 {
		t.Fatalf("edge 0 = %v, want arity 2", got)
	}
}

func TestParseQueryMalformed(t *testing.T) {
	for _, spec := range []string{"", "   ", "A,B;;A,C", "A,B; ,", ";"} {
		if _, err := ParseQuery(spec); err == nil {
			t.Errorf("ParseQuery(%q): want error, got nil", spec)
		}
	}
}

func TestParseTopology(t *testing.T) {
	cases := []struct {
		spec string
		n, m int
	}{
		{"line:4", 4, 3},
		{"clique:4", 4, 6},
		{"star:5", 5, 4},
		{"ring:6", 6, 6},
		{"grid:2x3", 6, 7},
	}
	for _, c := range cases {
		g, err := ParseTopology(c.spec)
		if err != nil {
			t.Fatalf("ParseTopology(%q): %v", c.spec, err)
		}
		if g.N() != c.n || g.M() != c.m {
			t.Errorf("%s: got n=%d m=%d, want n=%d m=%d", c.spec, g.N(), g.M(), c.n, c.m)
		}
	}
}

func TestParseTopologyMalformed(t *testing.T) {
	for _, spec := range []string{"", "line", "line:", "line:x", "line:0", "line:-3",
		"grid:3", "grid:3x", "grid:0x4", "torus:4"} {
		if _, err := ParseTopology(spec); err == nil {
			t.Errorf("ParseTopology(%q): want error, got nil", spec)
		} else if spec == "torus:4" && !strings.Contains(err.Error(), "unknown topology kind") {
			t.Errorf("ParseTopology(%q): err %v does not name the unknown kind", spec, err)
		}
	}
}
