package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlowConfig scopes the cancellation-propagation contract to the
// serving path.
type CtxFlowConfig struct {
	Packages []string
}

// DefaultCtxFlowConfig covers the layers PR 6's cancellation tests
// pin: the query service, the exec pool, the public façade, and the
// daemon.
func DefaultCtxFlowConfig() CtxFlowConfig {
	return CtxFlowConfig{Packages: []string{
		"repro/internal/service",
		"repro/internal/delta",
		"repro/internal/exec",
		"repro/faqs",
		"repro/cmd/faqd",
	}}
}

// NewCtxFlow builds the ctxflow analyzer. Rules on the serving path,
// all protecting per-request cancellation:
//
//  1. context.Background()/context.TODO() is forbidden outside func
//     main and the sanctioned nil-ctx boundary guard `if ctx == nil {
//     ctx = context.Background() }` — a fresh root context mid-path
//     detaches downstream work from the request, so a client cancel
//     or deadline never reaches it. Inside a ctx-taking function this
//     is a failure to thread the parameter.
//  2. a ctx-capable callee (first parameter context.Context) may not
//     be passed a nil context from inside a ctx-taking function: the
//     caller holds a real request context and must thread it.
func NewCtxFlow(cfg CtxFlowConfig) *Analyzer {
	a := &Analyzer{
		Name: "ctxflow",
		Doc:  "serving-path functions must thread the request context; no fresh Background/TODO or nil ctx mid-path",
	}
	a.Run = func(pass *Pass) error {
		if !matchPackage(cfg.Packages, pass.Pkg.ImportPath) {
			return nil
		}
		for i, f := range pass.Pkg.Files {
			if pass.Pkg.IsTestFile(i) {
				continue
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkCtxFlow(pass, fd)
			}
		}
		return nil
	}
	return a
}

func checkCtxFlow(pass *Pass, fd *ast.FuncDecl) {
	isMain := pass.Pkg.Name == "main" && fd.Name.Name == "main" && fd.Recv == nil
	ctxParams := contextParams(pass, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isContextRoot(pass, call) {
			if isMain || insideNilCtxGuard(pass, fd, call.Pos(), ctxParams) {
				return true
			}
			if len(ctxParams) > 0 {
				pass.Reportf(call.Pos(),
					"fresh root context inside a ctx-taking function detaches the work from the request: thread the ctx parameter (or derive via context.With*)")
			} else {
				pass.Reportf(call.Pos(),
					"context.Background/TODO on the serving path: accept a context.Context and thread the caller's")
			}
			return true
		}
		if len(ctxParams) > 0 && isNilIdent(ctxArgOf(pass, call)) {
			pass.Reportf(call.Pos(),
				"nil context passed to a ctx-capable callee from a ctx-taking function: thread the ctx parameter")
		}
		return true
	})
}

// contextParams returns the objects of the function's context.Context
// parameters.
func contextParams(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		if !isContextType(pass.Pkg.Info.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.Pkg.Info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// ctxArgOf returns the argument passed in context position when the
// call's callee takes a context.Context first parameter, else nil.
func ctxArgOf(pass *Pass, call *ast.CallExpr) ast.Expr {
	if len(call.Args) == 0 {
		return nil
	}
	sig, ok := pass.Pkg.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Params().Len() == 0 || !isContextType(sig.Params().At(0).Type()) {
		return nil
	}
	return call.Args[0]
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isContextRoot matches context.Background() and context.TODO().
func isContextRoot(pass *Pass, call *ast.CallExpr) bool {
	return isPkgFunc(pass, call, "context", "Background") || isPkgFunc(pass, call, "context", "TODO")
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// insideNilCtxGuard recognizes the sanctioned boundary default
//
//	if ctx == nil { ctx = context.Background() }
//
// on a ctx parameter: the public entry points accept nil and root it.
func insideNilCtxGuard(pass *Pass, fd *ast.FuncDecl, pos token.Pos, ctxParams map[types.Object]bool) bool {
	guard := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if guard {
			return false
		}
		ifs, ok := n.(*ast.IfStmt)
		if !ok || pos < ifs.Pos() || ifs.End() < pos {
			return true
		}
		bin, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || bin.Op != token.EQL {
			return true
		}
		x, y := bin.X, bin.Y
		if isNilIdent(x) {
			x, y = y, x
		}
		if !isNilIdent(y) {
			return true
		}
		if id, ok := x.(*ast.Ident); ok {
			if obj := pass.Pkg.Info.Uses[id]; obj != nil && ctxParams[obj] {
				guard = true
			}
		}
		return true
	})
	return guard
}
