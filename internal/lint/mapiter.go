package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapIterConfig scopes the map-iteration determinism contract to the
// packages whose outputs must be bit-identical run to run.
type MapIterConfig struct {
	Packages []string
	// SortFuncs lists "pkgpath.Func" entries recognized as sorting the
	// collected key slice, in addition to the standard sort/slices
	// entry points.
	SortFuncs []string
}

// DefaultMapIterConfig covers the determinism-critical layers: the
// distributed protocol and its network ledger (byte-identical
// Reports), plan canonicalization (stable fingerprints), and exec
// scheduling (reproducible task order).
func DefaultMapIterConfig() MapIterConfig {
	return MapIterConfig{
		Packages: []string{
			"repro/internal/protocol",
			"repro/internal/delta",
			"repro/internal/netsim",
			"repro/internal/plan",
			"repro/internal/exec",
		},
		SortFuncs: []string{"repro/internal/topology.SortedUnique"},
	}
}

// NewMapIter builds the mapiter analyzer: `range` over a map in a
// determinism-critical package is flagged unless the iteration is
// provably order-insensitive — no iteration variables bound at all, or
// the canonical collect-then-sort idiom (the body only appends the
// keys to a slice that is subsequently sorted in the same function) —
// or the site carries a //faqlint:allow mapiter(reason) pragma.
func NewMapIter(cfg MapIterConfig) *Analyzer {
	a := &Analyzer{
		Name: "mapiter",
		Doc:  "no raw map iteration in determinism-critical packages: sort the keys or annotate why order cannot matter",
	}
	a.Run = func(pass *Pass) error {
		if !matchPackage(cfg.Packages, pass.Pkg.ImportPath) {
			return nil
		}
		for i, f := range pass.Pkg.Files {
			if pass.Pkg.IsTestFile(i) {
				continue
			}
			file := f
			ast.Inspect(file, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.Pkg.Info.TypeOf(rng.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if blankRange(rng) || collectThenSort(pass, file, rng, cfg.SortFuncs) {
					return true
				}
				pass.Reportf(rng.Pos(),
					"map iteration order is nondeterministic: sort the keys first (collect-then-sort) or annotate with //faqlint:allow mapiter(reason)")
				return true
			})
		}
		return nil
	}
	return a
}

// blankRange reports whether the range binds no iteration variables
// (`for range m`): pure counting, order-free by construction.
func blankRange(rng *ast.RangeStmt) bool {
	isBlank := func(e ast.Expr) bool {
		if e == nil {
			return true
		}
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "_"
	}
	return isBlank(rng.Key) && isBlank(rng.Value)
}

// collectThenSort recognizes the canonical deterministic idiom:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Xxx(keys) / slices.Sort(keys)
//
// The loop body must consist solely of appends into one slice
// variable, and that variable must flow into a sort call later in the
// same enclosing function (directly, or inside the sort argument, as
// in `K = topology.SortedUnique(append(K, extra))`).
func collectThenSort(pass *Pass, f *ast.File, rng *ast.RangeStmt, sortFuncs []string) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	target, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
		return false
	} else if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	if first, ok := call.Args[0].(*ast.Ident); !ok || first.Name != target.Name {
		return false
	}
	fd := funcFor(f, rng.Pos())
	if fd == nil || fd.Body == nil {
		return false
	}
	targetObj := pass.Pkg.Info.Uses[target]
	if targetObj == nil {
		targetObj = pass.Pkg.Info.Defs[target]
	}
	if targetObj == nil {
		return false
	}
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok || c.Pos() <= rng.End() || len(c.Args) == 0 {
			return true
		}
		if !isSortCall(pass, c, sortFuncs) {
			return true
		}
		if mentionsObject(pass, c.Args[0], targetObj) {
			sorted = true
		}
		return true
	})
	return sorted
}

// mentionsObject reports whether the expression references the object.
func mentionsObject(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}

// isSortCall matches the standard sorted-order entry points plus the
// configured repo-specific ones.
func isSortCall(pass *Pass, call *ast.CallExpr, sortFuncs []string) bool {
	for _, fn := range []string{"Strings", "Ints", "Float64s", "Sort", "Slice", "SliceStable", "Stable"} {
		if isPkgFunc(pass, call, "sort", fn) {
			return true
		}
	}
	for _, fn := range []string{"Sort", "SortFunc", "SortStableFunc"} {
		if isPkgFunc(pass, call, "slices", fn) {
			return true
		}
	}
	for _, qualified := range sortFuncs {
		if i := strings.LastIndexByte(qualified, '.'); i > 0 {
			if isPkgFunc(pass, call, qualified[:i], qualified[i+1:]) {
				return true
			}
		}
	}
	return false
}
