package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// MetricRegConfig scopes the metric-registration contract.
type MetricRegConfig struct {
	// Package is the import path of the metrics registry package whose
	// New* registration methods the contract covers.
	Package string
}

// DefaultMetricRegConfig covers the repository's obs registry.
func DefaultMetricRegConfig() MetricRegConfig {
	return MetricRegConfig{Package: ModulePath + "/internal/obs"}
}

// metricNameRE is the Prometheus metric-name grammar the obs registry
// enforces at runtime; the analyzer enforces it at lint time so a bad
// name is a build-stage finding, not a first-scrape panic.
var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// registerMethods are the obs.Registry registration entry points; for
// every one of them the metric name is argument 0 and the help text is
// argument 1.
var registerMethods = map[string]bool{
	"NewCounter": true, "NewGauge": true, "NewHistogram": true,
	"NewCounterVec": true, "NewGaugeVec": true, "NewHistogramVec": true,
}

type metricSite struct {
	name string
	pos  token.Pos
	pkg  string
}

// NewMetricReg builds the metricreg analyzer:
//
//   - obs registry New* call sites in non-test code must pass the
//     metric name as a string literal matching the Prometheus name
//     grammar — the exposition surface and the README catalogue are
//     greppable only if names are static;
//   - the help text must be a non-empty string literal (every family
//     renders a # HELP line an operator will read);
//   - a metric name may be registered by only one package. Re-use
//     within a package is the idempotent-registration idiom (services
//     bind shared families per semiring); a second package claiming
//     the name is a clash the runtime would only catch if both
//     registrations ever met on one registry.
//
// Test files are skipped: throwaway registries in tests may mint
// names freely.
func NewMetricReg(cfg MetricRegConfig) *Analyzer {
	var registered []metricSite
	a := &Analyzer{
		Name: "metricreg",
		Doc:  "metric registrations use unique string-literal names with non-empty help text",
	}
	a.Run = func(pass *Pass) error {
		if !strings.HasPrefix(pass.Pkg.ImportPath, ModulePath+"/") && pass.Pkg.ImportPath != ModulePath {
			return nil
		}
		for i, f := range pass.Pkg.Files {
			if pass.Pkg.IsTestFile(i) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isMetricRegisterCall(pass, call, cfg.Package) || len(call.Args) < 2 {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					pass.Reportf(call.Pos(),
						"metric registration must use a string-literal name (the /metrics catalogue and uniqueness checks are static)")
					return true
				}
				name, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true
				}
				if !metricNameRE.MatchString(name) {
					pass.Reportf(lit.Pos(),
						"metric name %q is not a valid metric name ([a-zA-Z_:][a-zA-Z0-9_:]*)", name)
				} else {
					registered = append(registered, metricSite{name: name, pos: lit.Pos(), pkg: pass.Pkg.ImportPath})
				}
				help, ok := call.Args[1].(*ast.BasicLit)
				if !ok || help.Kind != token.STRING {
					pass.Reportf(call.Args[1].Pos(),
						"metric %q: help text must be a string literal (it renders as the # HELP line)", name)
					return true
				}
				if s, err := strconv.Unquote(help.Value); err == nil && strings.TrimSpace(s) == "" {
					pass.Reportf(help.Pos(),
						"metric %q: help text must be non-empty (every family renders a # HELP line)", name)
				}
				return true
			})
		}
		return nil
	}
	a.Finish = func(report func(token.Pos, string, ...any)) error {
		sort.Slice(registered, func(i, j int) bool { return registered[i].pos < registered[j].pos })
		byName := make(map[string]metricSite, len(registered))
		for _, s := range registered {
			if first, dup := byName[s.name]; dup && first.pkg != s.pkg {
				report(s.pos, "metric name %q already registered by %s: family names must be unique across packages", s.name, first.pkg)
				continue
			}
			byName[s.name] = s
		}
		return nil
	}
	return a
}

// isMetricRegisterCall matches the registry's New* registration
// methods by resolving the callee to the obs package — it matches the
// call whether it goes through *obs.Registry directly, obs.Default(),
// or the faqs façade's Registry alias.
func isMetricRegisterCall(pass *Pass, call *ast.CallExpr, pkgPath string) bool {
	id := calleeIdent(call)
	if id == nil || !registerMethods[id.Name] {
		return false
	}
	return isPkgFunc(pass, call, pkgPath, id.Name)
}
