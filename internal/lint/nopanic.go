package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoPanicConfig scopes the "typed errors, never panics" contract.
type NoPanicConfig struct {
	// Packages (by prefix for trailing "/", exact otherwise) the
	// contract covers.
	Packages []string
	// Contain maps "pkgpath.FuncName" containment sites — the places
	// that are *allowed* to panic because panicking is their job
	// (failpoint panic modes, the exec layer's panic normalization) —
	// to the reason they are exempt.
	Contain map[string]string
	// MustIdiom, when true, exempts exported Must-prefixed functions:
	// the documented panic-on-error constructor idiom (MustSchema,
	// MustWidth) for statically-known inputs.
	MustIdiom bool
}

// DefaultNoPanicConfig is the repository's standing contract: internal
// packages and the public façade return typed errors; panics are
// confined to the failpoint registry's injection modes and the exec
// layer's panic containment plumbing.
func DefaultNoPanicConfig() NoPanicConfig {
	return NoPanicConfig{
		Packages: []string{"repro/internal/", "repro/faqs"},
		Contain: map[string]string{
			"repro/internal/fault.hitSlow":    "ModePanic is the failpoint contract: injected panics are the chaos suite's input",
			"repro/internal/fault.Inject":     "ctx-less kernel sites surface every failing mode as a typed *InjectedPanic",
			"repro/internal/fault.init":       "a silently ignored FAQ_FAILPOINTS chaos spec would report a clean run that tested nothing",
			"repro/internal/exec.rethrow":     "re-raises a captured task panic on the calling goroutine (containment plumbing)",
			"repro/internal/exec.wrapPanic":   "normalizes sequential-path panics into the *TaskPanic shape the parallel paths produce",
			"repro/internal/exec.Map":         "re-raises the captured *TaskPanic on the caller once all workers drain (containment plumbing)",
			"repro/internal/obs.mustRegister": "metric registration mismatches are programmer errors caught at init, not runtime conditions to return",
		},
		MustIdiom: true,
	}
}

// NewNoPanic builds the nopanic analyzer: no naked panic / log.Fatal /
// os.Exit in the covered packages outside the whitelisted containment
// sites, Must* constructors, and pragma-annotated invariant checks.
func NewNoPanic(cfg NoPanicConfig) *Analyzer {
	a := &Analyzer{
		Name: "nopanic",
		Doc:  "internal packages return typed errors; panic/log.Fatal/os.Exit only at whitelisted containment sites",
	}
	a.Run = func(pass *Pass) error {
		if !matchPackage(cfg.Packages, pass.Pkg.ImportPath) {
			return nil
		}
		for i, f := range pass.Pkg.Files {
			if pass.Pkg.IsTestFile(i) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				kind := panicKind(pass, call)
				if kind == "" {
					return true
				}
				if fd := funcFor(f, call.Pos()); fd != nil {
					key := pass.Pkg.ImportPath + "." + fd.Name.Name
					if _, ok := cfg.Contain[key]; ok {
						return true
					}
					if cfg.MustIdiom && fd.Recv == nil && strings.HasPrefix(fd.Name.Name, "Must") {
						return true
					}
				}
				pass.Reportf(call.Pos(),
					"%s in %s: the contract is typed errors, never panics; return an error, or annotate an invariant check with //faqlint:allow nopanic(reason)",
					kind, pass.Pkg.ImportPath)
				return true
			})
		}
		return nil
	}
	return a
}

// panicKind classifies a call as a contract violation: the panic
// builtin, log.Fatal*, or os.Exit. Empty string for anything else.
func panicKind(pass *Pass, call *ast.CallExpr) string {
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			return "panic"
		}
		return ""
	}
	for _, fn := range []string{"Fatal", "Fatalf", "Fatalln"} {
		if isPkgFunc(pass, call, "log", fn) {
			return "log." + fn
		}
	}
	if isPkgFunc(pass, call, "os", "Exit") {
		return "os.Exit"
	}
	return ""
}

// matchPackage reports whether path matches one of the patterns
// (prefix match for patterns ending in "/", exact otherwise).
func matchPackage(patterns []string, path string) bool {
	for _, p := range patterns {
		if strings.HasSuffix(p, "/") {
			if strings.HasPrefix(path, p) {
				return true
			}
		} else if path == p {
			return true
		}
	}
	return false
}
