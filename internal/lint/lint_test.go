// Golden-file suites for the faqlint analyzers, in the style of
// x/tools' analysistest: each testdata/src fixture package seeds both
// violations and near-miss traps, and expectations are written in the
// fixture source as
//
//	... // want `regexp`
//
// comments on the line the finding must anchor to. A run fails on any
// finding without a matching want and on any want without a matching
// finding — so a seeded violation that stops firing and a trap that
// starts firing are both test failures.
package lint_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

// repoRoot walks up from the test's working directory to go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// sharedLoader is reused across subtests so `go list -export` runs and
// export-data resolution are paid once per `go test` invocation.
var sharedLoader *lint.Loader

func loader(t *testing.T) *lint.Loader {
	t.Helper()
	if sharedLoader == nil {
		sharedLoader = lint.NewLoader(repoRoot(t))
	}
	return sharedLoader
}

// fixture is one testdata package: the directory under testdata/src
// and the synthetic import path it is analyzed under (which is what
// scopes each analyzer's package matching).
type fixture struct {
	dir        string
	importPath string
}

func loadFixtures(t *testing.T, fixtures []fixture) ([]*lint.Package, []string) {
	t.Helper()
	l := loader(t)
	root := repoRoot(t)
	var pkgs []*lint.Package
	var dirs []string
	for _, fx := range fixtures {
		dir := filepath.Join(root, "internal", "lint", "testdata", "src", fx.dir)
		pkg, err := l.LoadDir(dir, fx.importPath)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", fx.dir, err)
		}
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("fixture %s has type errors: %v", fx.dir, pkg.TypeErrors)
		}
		pkgs = append(pkgs, pkg)
		dirs = append(dirs, dir)
	}
	return pkgs, dirs
}

// wantRE extracts the backquoted regexes of a `want` comment.
var (
	wantRE   = regexp.MustCompile("want((?:\\s+`[^`]*`)+)")
	quotedRE = regexp.MustCompile("`[^`]*`")
)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// parseWants scans every fixture .go file for want comments.
func parseWants(t *testing.T, dirs []string) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, dir := range dirs {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			file := filepath.Join(dir, e.Name())
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				m := wantRE.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				for _, quoted := range quotedRE.FindAllString(m[1], -1) {
					pat := strings.Trim(quoted, "`")
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", file, i+1, pat, err)
					}
					wants = append(wants, &expectation{file: file, line: i + 1, re: re})
				}
			}
		}
	}
	return wants
}

// runGolden loads the fixtures, runs the analyzers, and reconciles
// findings against the want comments.
func runGolden(t *testing.T, fixtures []fixture, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkgs, dirs := loadFixtures(t, fixtures)
	runner := &lint.Runner{Loader: loader(t), Analyzers: analyzers}
	diags, err := runner.RunPackages(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	wants := parseWants(t, dirs)
	if len(wants) == 0 {
		t.Fatal("fixture seeds no want comments: the suite would pass vacuously")
	}
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestGoldenFacade(t *testing.T) {
	runGolden(t, []fixture{
		{"facade/badcmd", "repro/cmd/badcmd"},
		{"facade/faqd", "repro/cmd/faqd"},
		{"facade/exempt", "repro/cmd/faqbench"},
		{"facade/internalpkg", "repro/internal/notacmd"},
	}, lint.NewFacade(lint.DefaultFacadeConfig()))
}

func TestGoldenNoPanic(t *testing.T) {
	cfg := lint.NoPanicConfig{
		Packages:  []string{"repro/internal/"},
		Contain:   map[string]string{"repro/internal/nopanicfix.contained": "fixture containment site"},
		MustIdiom: true,
	}
	runGolden(t, []fixture{{"nopanic/viol", "repro/internal/nopanicfix"}}, lint.NewNoPanic(cfg))
}

func TestGoldenMapIter(t *testing.T) {
	cfg := lint.MapIterConfig{
		Packages:  []string{"repro/internal/protocol"},
		SortFuncs: []string{"repro/internal/protocol.sortedUnique"},
	}
	runGolden(t, []fixture{{"mapiter/viol", "repro/internal/protocol"}}, lint.NewMapIter(cfg))
}

func TestGoldenCtxFlow(t *testing.T) {
	runGolden(t, []fixture{
		{"ctxflow/viol", "repro/internal/service"},
		{"ctxflow/mainpkg", "repro/cmd/faqd"},
	}, lint.NewCtxFlow(lint.DefaultCtxFlowConfig()))
}

func TestGoldenHotPath(t *testing.T) {
	runGolden(t, []fixture{{"hotpath/viol", "repro/internal/relation"}},
		lint.NewHotPath(lint.DefaultHotPathConfig()))
}

func TestGoldenFailpoint(t *testing.T) {
	cfg := lint.FailpointConfig{ChaosPackages: []string{"repro/internal/fixturefp"}}
	runGolden(t, []fixture{
		{"failpoint/viol", "repro/internal/fixturefp"},
		{"failpoint/outside", "repro/internal/outsidefp"},
	}, lint.NewFailpoint(cfg))
}

func TestGoldenMetricReg(t *testing.T) {
	runGolden(t, []fixture{
		{"metricreg/viol", "repro/internal/fixturemr"},
		{"metricreg/other", "repro/internal/othermr"},
	}, lint.NewMetricReg(lint.DefaultMetricRegConfig()))
}

// TestGoldenPragmas exercises the pragma grammar itself (malformed,
// unknown-analyzer, empty-reason, and stale suppressions are all
// findings) under the full default analyzer suite.
func TestGoldenPragmas(t *testing.T) {
	runGolden(t, []fixture{{"pragmas/viol", "repro/internal/pragmafix"}},
		lint.NewAnalyzers()...)
}

// TestAnalyzerCatalogue pins the suite: exactly the seven contract
// analyzers, under their documented names.
func TestAnalyzerCatalogue(t *testing.T) {
	want := []string{"facade", "nopanic", "mapiter", "ctxflow", "hotpath", "failpoint", "metricreg"}
	as := lint.NewAnalyzers()
	if len(as) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(as), len(want))
	}
	for i, a := range as {
		if a.Name != want[i] {
			t.Errorf("analyzer %d: got %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc line", a.Name)
		}
	}
}

// TestTreeIsClean runs the full default suite over the live repository
// — the same run as `make lint` — and requires zero findings: every
// real violation is fixed or pragma-annotated with a reason.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo lint run skipped in -short mode")
	}
	runner := lint.NewRunner(loader(t))
	diags, err := runner.Run([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("live tree finding: %s", d)
	}
}

// TestFacadeContractIsLive proves the façade contract has teeth (the
// acceptance criterion): removing cmd/faqd's allowlist entry must make
// the facade analyzer fail the daemon.
func TestFacadeContractIsLive(t *testing.T) {
	if testing.Short() {
		t.Skip("package-closure lint run skipped in -short mode")
	}
	cfg := lint.DefaultFacadeConfig()
	delete(cfg.Allowed, "repro/cmd/faqd")
	runner := &lint.Runner{Loader: loader(t), Analyzers: []*lint.Analyzer{lint.NewFacade(cfg)}}
	diags, err := runner.Run([]string{"./cmd/faqd"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if d.Analyzer == "facade" && strings.Contains(d.Message, "repro/cmd/faqd") {
			found = true
		}
	}
	if !found {
		t.Fatal("deleting the cmd/faqd allowlist entry produced no facade finding: the contract is not live")
	}
}
