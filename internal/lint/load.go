package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ModulePath is the import-path root of this repository. The analyzers
// key their package scoping (internal/, cmd/, examples/, faqs) off it.
const ModulePath = "repro"

// Package is one type-checked unit of analysis: the syntax trees, the
// type information, and enough metadata for analyzers to scope
// themselves (import path, directory, which files are _test.go files).
type Package struct {
	ImportPath string // logical path, e.g. "repro/internal/plan"
	Name       string // package name ("main" for commands)
	Dir        string
	GoFiles    []string // absolute paths, parallel to Files
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error // non-fatal: analysis proceeds on partial info
}

// IsTestFile reports whether the i-th file of the package is a
// _test.go file.
func (p *Package) IsTestFile(i int) bool {
	return strings.HasSuffix(p.GoFiles[i], "_test.go")
}

// listPackage mirrors the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	ForTest    string
	GoFiles    []string
	Export     string
	Standard   bool
	ImportMap  map[string]string
	Module     *struct{ Path string }
}

// Loader turns `go list` package patterns into type-checked Packages.
// Dependencies are resolved from compiler export data produced by
// `go list -export`, so loading needs no network and no third-party
// tooling — only the Go toolchain that built the repository.
type Loader struct {
	ModuleDir string // repository root (directory holding go.mod)

	mu      sync.Mutex
	fset    *token.FileSet
	exports map[string]string // raw import path -> export data file
}

// NewLoader returns a Loader rooted at moduleDir.
func NewLoader(moduleDir string) *Loader {
	return &Loader{
		ModuleDir: moduleDir,
		fset:      token.NewFileSet(),
		exports:   make(map[string]string),
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// goList runs `go list -deps -test -export -json` on the patterns and
// decodes the package stream.
func (l *Loader) goList(patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-deps", "-test", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModuleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Load lists the patterns, selects the analyzable module packages, and
// type-checks each one. For a package with in-package tests the [test]
// variant is analyzed (its GoFiles are the base files plus the test
// files); external foo_test packages are analyzed as their own unit;
// generated .test mains are skipped.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	listed, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}

	l.mu.Lock()
	for _, p := range listed {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	l.mu.Unlock()

	// Packages superseded by their in-package [test] variant.
	superseded := make(map[string]bool)
	for _, p := range listed {
		if p.ForTest != "" && p.ImportPath == p.ForTest+" ["+p.ForTest+".test]" {
			superseded[p.ForTest] = true
		}
	}

	var out []*Package
	for _, p := range listed {
		if p.Standard || p.Module == nil || p.Module.Path != ModulePath {
			continue
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue // generated test main
		}
		logical := p.ImportPath
		if p.ForTest != "" {
			if i := strings.IndexByte(logical, ' '); i >= 0 {
				logical = logical[:i]
			}
		}
		if p.ForTest == "" && superseded[p.ImportPath] {
			continue
		}
		pkg, err := l.check(logical, p.Name, p.Dir, absFiles(p.Dir, p.GoFiles), p.ImportMap)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ImportPath != out[j].ImportPath {
			return out[i].ImportPath < out[j].ImportPath
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

// LoadDir type-checks one directory of Go files as a stand-alone
// package under the given import path — the entry point the golden
// test harness uses for testdata fixture packages. The fixture may
// import standard-library and repro packages; export data for any
// import not already cached is resolved with an on-demand `go list`.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(files)
	return l.check(importPath, "", dir, files, nil)
}

func absFiles(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		if filepath.IsAbs(n) {
			out[i] = n
		} else {
			out[i] = filepath.Join(dir, n)
		}
	}
	return out
}

// check parses and type-checks one package. Type errors are collected,
// not fatal: analyzers run on whatever information resolved.
func (l *Loader) check(importPath, name, dir string, goFiles []string, importMap map[string]string) (*Package, error) {
	pkg := &Package{ImportPath: importPath, Name: name, Dir: dir, GoFiles: goFiles}
	for _, f := range goFiles {
		af, err := parser.ParseFile(l.fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		pkg.Files = append(pkg.Files, af)
	}
	if pkg.Name == "" && len(pkg.Files) > 0 {
		pkg.Name = pkg.Files[0].Name.Name
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l.importerFor(importMap),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check's error duplicates the first collected TypeError; partial
	// information is still attached, which is all analysis needs.
	tpkg, _ := conf.Check(importPath, l.fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	return pkg, nil
}

// importerFor builds a dependency importer for one package: import
// paths go through the package's ImportMap (the test-variant
// redirection `go list -test` reports), then resolve to compiler
// export data. A fresh gc importer per package keeps the per-path
// cache consistent with that package's map.
func (l *Loader) importerFor(importMap map[string]string) types.Importer {
	inner := importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, err := l.exportFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	})
	return &mapImporter{inner: inner, importMap: importMap}
}

// exportFile resolves an import path to its export data file, shelling
// out to `go list -export` once for paths outside the already-listed
// closure (testdata fixtures importing std packages no repo file uses).
func (l *Loader) exportFile(path string) (string, error) {
	l.mu.Lock()
	if f, ok := l.exports[path]; ok {
		l.mu.Unlock()
		return f, nil
	}
	l.mu.Unlock()
	listed, err := l.goList([]string{path})
	if err != nil {
		return "", fmt.Errorf("lint: no export data for %q: %v", path, err)
	}
	l.mu.Lock()
	for _, p := range listed {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	f, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("lint: no export data for %q", path)
	}
	return f, nil
}

type mapImporter struct {
	inner     types.Importer
	importMap map[string]string
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	return m.inner.Import(path)
}
