package lint

import (
	"go/ast"
	"go/token"
	"path"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// FailpointConfig scopes the failpoint registration and chaos-sweep
// coverage contract.
type FailpointConfig struct {
	// ChaosPackages mirrors the Makefile's CHAOS_PKGS: the packages
	// whose TestChaos* functions the `make chaos` sweep runs.
	ChaosPackages []string
	// Exempt packages may arm failpoints in arbitrarily-named tests,
	// each with a recorded reason.
	Exempt map[string]string
}

// DefaultFailpointConfig is the repository's chaos-suite wiring.
func DefaultFailpointConfig() FailpointConfig {
	return FailpointConfig{
		ChaosPackages: []string{
			"repro/internal/service",
			"repro/internal/delta",
			"repro/internal/relation",
			"repro/internal/protocol",
			"repro/internal/exec",
			"repro/internal/rpc",
			"repro/internal/cluster",
			"repro/faqs",
			"repro/cmd/faqd",
		},
		Exempt: map[string]string{
			"repro/internal/fault": "the registry's own unit suite exercises arming directly; its behaviors are not chaos sweeps",
		},
	}
}

// siteNameRE is the <pkg>.<site> grammar for failpoint names.
var siteNameRE = regexp.MustCompile(`^[a-z][a-z0-9]*\.[a-z][a-z0-9_]*$`)

type fpSite struct {
	name string
	pos  token.Pos
	pkg  string
}

// NewFailpoint builds the failpoint analyzer:
//
//   - fault.Register / faqs.RegisterFailpoint call sites in non-test
//     code must pass a unique string literal matching the
//     `<pkg>.<site>` grammar, with <pkg> the registering package;
//   - every registered site must appear in the chaos-suite coverage
//     literals (the chaosSites lists and arming specs inside TestChaos*
//     files), so a refactor cannot silently drop a site from the sweep;
//   - a test function that arms failpoints (fault.Enable /
//     fault.EnableSpec / faqs.EnableFailpoints, directly or through
//     package-local helpers) must be named TestChaos* and live in a
//     chaos-sweep package, so `go test -run TestChaos` provably runs it.
func NewFailpoint(cfg FailpointConfig) *Analyzer {
	chaosPkgs := make(map[string]bool, len(cfg.ChaosPackages))
	for _, p := range cfg.ChaosPackages {
		chaosPkgs[p] = true
	}
	var (
		registered []fpSite
		covered    []string // string literals inside chaos test files
	)
	a := &Analyzer{
		Name: "failpoint",
		Doc:  "failpoint sites use unique <pkg>.<site> literals and stay covered by the TestChaos sweep",
	}
	a.Run = func(pass *Pass) error {
		if !strings.HasPrefix(pass.Pkg.ImportPath, ModulePath+"/") && pass.Pkg.ImportPath != ModulePath {
			return nil
		}
		sitePrefix := pass.Pkg.Name
		if sitePrefix == "main" {
			sitePrefix = path.Base(pass.Pkg.ImportPath)
		}
		armedOutsideSweep := false
		for i, f := range pass.Pkg.Files {
			if pass.Pkg.IsTestFile(i) {
				if hasChaosTest(f) {
					covered = append(covered, stringLiterals(f)...)
				}
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isRegisterCall(pass, call) || len(call.Args) != 1 {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					pass.Reportf(call.Pos(),
						"failpoint registration must use a string-literal site name (the sweep and coverage checks are static)")
					return true
				}
				name, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true
				}
				if !siteNameRE.MatchString(name) {
					pass.Reportf(lit.Pos(),
						"failpoint name %q does not match the <pkg>.<site> grammar (lowercase, e.g. %q)", name, sitePrefix+".mysite")
				} else if prefix, _, _ := strings.Cut(name, "."); prefix != sitePrefix {
					pass.Reportf(lit.Pos(),
						"failpoint %q registered by package %s: the <pkg> segment must be %q", name, pass.Pkg.ImportPath, sitePrefix)
				}
				registered = append(registered, fpSite{name: name, pos: lit.Pos(), pkg: pass.Pkg.ImportPath})
				return true
			})
		}
		// Convention: arming tests are TestChaos* in a sweep package.
		if _, exempt := cfg.Exempt[pass.Pkg.ImportPath]; exempt {
			return nil
		}
		arming := armingFuncs(pass)
		for i, f := range pass.Pkg.Files {
			if !pass.Pkg.IsTestFile(i) {
				continue
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Recv != nil || !strings.HasPrefix(fd.Name.Name, "Test") {
					continue
				}
				if !arming[fd.Name.Name] {
					continue
				}
				if !strings.HasPrefix(fd.Name.Name, "TestChaos") {
					pass.Reportf(fd.Name.Pos(),
						"%s arms failpoints but is not named TestChaos*: the `make chaos` sweep (-run TestChaos) would not run it",
						fd.Name.Name)
				}
				if !chaosPkgs[pass.Pkg.ImportPath] && !armedOutsideSweep {
					armedOutsideSweep = true
					pass.Reportf(fd.Name.Pos(),
						"package %s arms failpoints in tests but is not in the chaos sweep (Makefile CHAOS_PKGS / failpoint analyzer ChaosPackages)",
						pass.Pkg.ImportPath)
				}
			}
		}
		return nil
	}
	a.Finish = func(report func(token.Pos, string, ...any)) error {
		sort.Slice(registered, func(i, j int) bool { return registered[i].pos < registered[j].pos })
		byName := make(map[string]fpSite, len(registered))
		for _, s := range registered {
			if first, dup := byName[s.name]; dup && first.pkg != s.pkg {
				// Same-package re-registration is the idempotent-Register
				// idiom; a second package claiming the name is a clash.
				report(s.pos, "failpoint name %q already registered by %s: site names must be unique", s.name, first.pkg)
				continue
			}
			byName[s.name] = s
		}
		if len(covered) == 0 {
			// No chaos test files in the analyzed set (partial lint run):
			// the coverage invariant cannot be evaluated meaningfully.
			return nil
		}
		blob := strings.Join(covered, "\x00")
		for _, name := range sortedKeys(byName) {
			if !strings.Contains(blob, name) {
				s := byName[name]
				report(s.pos,
					"failpoint %q is not referenced by any TestChaos* suite: add it to a chaos coverage list so the sweep exercises it", name)
			}
		}
		return nil
	}
	return a
}

func sortedKeys(m map[string]fpSite) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// isRegisterCall matches fault.Register and faqs.RegisterFailpoint.
func isRegisterCall(pass *Pass, call *ast.CallExpr) bool {
	return isPkgFunc(pass, call, ModulePath+"/internal/fault", "Register") ||
		isPkgFunc(pass, call, ModulePath+"/faqs", "RegisterFailpoint")
}

// isArmingCall matches the calls that arm failpoints: fault.Enable,
// fault.EnableSpec, faqs.EnableFailpoints.
func isArmingCall(pass *Pass, call *ast.CallExpr) bool {
	return isPkgFunc(pass, call, ModulePath+"/internal/fault", "Enable") ||
		isPkgFunc(pass, call, ModulePath+"/internal/fault", "EnableSpec") ||
		isPkgFunc(pass, call, ModulePath+"/faqs", "EnableFailpoints")
}

// armingFuncs computes, to a fixed point over the package-local call
// graph, the set of top-level functions that (transitively) arm
// failpoints — so a Test that arms through a helper is still caught.
func armingFuncs(pass *Pass) map[string]bool {
	arms := make(map[string]bool)
	calls := make(map[string]map[string]bool)
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if calls[name] == nil {
				calls[name] = make(map[string]bool)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isArmingCall(pass, call) {
					arms[name] = true
				}
				if id, ok := call.Fun.(*ast.Ident); ok {
					calls[name][id.Name] = true
				}
				return true
			})
		}
	}
	for changed := true; changed; {
		changed = false
		for caller, callees := range calls {
			if arms[caller] {
				continue
			}
			for callee := range callees {
				if arms[callee] {
					arms[caller] = true
					changed = true
					break
				}
			}
		}
	}
	return arms
}

// hasChaosTest reports whether the file declares a TestChaos* func.
func hasChaosTest(f *ast.File) bool {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && strings.HasPrefix(fd.Name.Name, "TestChaos") {
			return true
		}
	}
	return false
}

// stringLiterals collects every string literal in the file.
func stringLiterals(f *ast.File) []string {
	var out []string
	ast.Inspect(f, func(n ast.Node) bool {
		if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.STRING {
			if s, err := strconv.Unquote(lit.Value); err == nil && s != "" {
				out = append(out, s)
			}
		}
		return true
	})
	return out
}
