package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// FacadeConfig scopes the façade-only import contract: programs under
// cmd/ and examples/ reach the repository's functionality only through
// the import paths their Allowed entry lists (normally just the public
// faqs façade). Packages with no entry may import nothing from the
// module at all; Exempt harnesses may import anything, each with a
// recorded reason.
type FacadeConfig struct {
	Module  string              // module path, e.g. "repro"
	Allowed map[string][]string // package -> module imports it may use
	Exempt  map[string]string   // package -> why it bypasses the façade
}

// DefaultFacadeConfig is the repository's standing façade contract —
// the analyzer form of the Makefile's retired vet-imports grep, with
// the same bench/diagnostic-harness allowlist.
func DefaultFacadeConfig() FacadeConfig {
	return FacadeConfig{
		Module: ModulePath,
		Allowed: map[string][]string{
			"repro/cmd/faqd":                 {"repro/faqs"},
			"repro/cmd/faqw":                 {"repro/faqs"},
			"repro/cmd/faqrun":               {"repro/faqs"},
			"repro/cmd/faqlint":              {"repro/internal/lint"},
			"repro/examples/quickstart":      {"repro/faqs"},
			"repro/examples/triangle_cyclic": {"repro/faqs"},
			"repro/examples/pgm_marginals":   {"repro/faqs"},
			"repro/examples/sensor_network":  {"repro/faqs"},
			"repro/examples/mcm_pipeline":    {"repro/faqs"},
		},
		Exempt: map[string]string{
			"repro/cmd/faqbench": "regenerates the paper tables from the internals",
			"repro/cmd/faqload":  "verifies served answers against the internal reference solvers",
			"repro/cmd/ghdtool":  "dumps GYO traces no public API exposes",
		},
	}
}

// NewFacade builds the facade analyzer: cmd/ and examples/ programs
// must consume the repository only through their allowlisted façade
// imports. Non-test files only, matching the import graph `go list
// -f .Imports` exposes (what a built binary links).
func NewFacade(cfg FacadeConfig) *Analyzer {
	a := &Analyzer{
		Name: "facade",
		Doc:  "cmd/ and examples/ may reach repo functionality only through the faqs façade allowlist",
	}
	a.Run = func(pass *Pass) error {
		pkg := pass.Pkg
		if !strings.HasPrefix(pkg.ImportPath, cfg.Module+"/cmd/") &&
			!strings.HasPrefix(pkg.ImportPath, cfg.Module+"/examples/") {
			return nil
		}
		if _, ok := cfg.Exempt[pkg.ImportPath]; ok {
			return nil
		}
		allowed := make(map[string]bool)
		for _, imp := range cfg.Allowed[pkg.ImportPath] {
			allowed[imp] = true
		}
		_, listed := cfg.Allowed[pkg.ImportPath]
		for i, f := range pkg.Files {
			if pkg.IsTestFile(i) {
				continue
			}
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if path != cfg.Module && !strings.HasPrefix(path, cfg.Module+"/") {
					continue
				}
				if allowed[path] {
					continue
				}
				reportFacade(pass, imp, path, listed)
			}
		}
		return nil
	}
	return a
}

func reportFacade(pass *Pass, imp *ast.ImportSpec, path string, listed bool) {
	if !listed {
		pass.Reportf(imp.Pos(),
			"package %s has no façade allowlist entry and may not import %s; route through the public faqs façade or add an entry to the facade analyzer config",
			pass.Pkg.ImportPath, path)
		return
	}
	pass.Reportf(imp.Pos(),
		"import of %s bypasses the faqs façade: %s may only import its allowlisted façade packages",
		path, pass.Pkg.ImportPath)
}
