// Package lint is faqlint: the repository's static-analysis suite. It
// compiles the ROADMAP's standing contracts — the faqs façade is the
// only embedding surface, typed errors never panics, deterministic
// (bit-identical) answers, the allocation discipline of the relation
// kernels, and the failpoint/chaos-sweep coverage invariants — into
// machine-checked analyzers, so violating a contract is a build
// failure in `make lint` / CI rather than a flaky runtime find.
//
// The framework is a deliberately small, dependency-free analogue of
// golang.org/x/tools/go/analysis (the container this repository builds
// in has no module proxy access, so x/tools cannot be vendored): an
// Analyzer carries a per-package Run over parsed+type-checked syntax
// and an optional whole-repo Finish for cross-package invariants; a
// Runner loads packages via `go list -export` compiler export data and
// reports position-sorted Diagnostics.
//
// Intentional violations are annotated in source:
//
//	//faqlint:allow <analyzer>(<reason>)
//
// placed on the flagged line or the line directly above. The reason is
// mandatory — an empty reason is itself a finding — so every
// suppression documents why the contract does not apply at that site.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a resolved source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named contract check. Run is invoked once per
// analyzed package; Finish, when non-nil, once after every package has
// run — the hook for whole-repo invariants (e.g. failpoint-name
// uniqueness and chaos-sweep coverage). Analyzers holding Finish state
// are built fresh per Runner via NewAnalyzers.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
	// Finish reports cross-package findings through the reporter.
	Finish func(report func(token.Pos, string, ...any)) error
}

// Pass is the per-package view handed to an analyzer's Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	runner   *Runner
}

// Reportf records a finding at pos. Findings suppressed by a
// //faqlint:allow pragma for this analyzer are dropped by the Runner.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.runner.report(p.Analyzer.Name, pos, format, args...)
}

// allowPragma is one parsed //faqlint:allow occurrence.
type allowPragma struct {
	pos      token.Pos
	line     int
	file     string
	analyzer string
	reason   string
	used     bool
}

// pragmaRE matches a "//faqlint:allow <name>(<reason>)" directive
// comment (directive style: no space after //, pragma at the start of
// the comment — prose merely mentioning the syntax does not trigger).
// The reason group is everything between the outermost parentheses and
// may be empty (which the Runner reports as a finding).
var pragmaRE = regexp.MustCompile(`^//faqlint:allow\s+([a-zA-Z0-9_-]+)\((.*)\)`)

// bareAllowRE catches a "//faqlint:allow name" directive with no
// parenthesized reason at all, so the mandatory-reason rule cannot be
// dodged by omitting the parentheses.
var bareAllowRE = regexp.MustCompile(`^//faqlint:allow\s+([a-zA-Z0-9_-]+)\s*($|[^(\s])`)

// Runner executes a set of analyzers over packages, applies pragma
// suppression, and accumulates deduplicated, position-sorted findings.
type Runner struct {
	Loader    *Loader
	Analyzers []*Analyzer

	diags   []Diagnostic
	seen    map[string]bool
	pragmas map[string][]*allowPragma // file -> pragmas, ordered by line
}

// NewRunner builds a Runner over a fresh default analyzer set.
func NewRunner(loader *Loader) *Runner {
	return &Runner{Loader: loader, Analyzers: NewAnalyzers()}
}

// report resolves, pragma-filters, dedupes, and stores one finding.
func (r *Runner) report(analyzer string, pos token.Pos, format string, args ...any) {
	position := r.Loader.Fset().Position(pos)
	if r.allowed(analyzer, position) {
		return
	}
	d := Diagnostic{Pos: position, Analyzer: analyzer, Message: fmt.Sprintf(format, args...)}
	key := d.String()
	if r.seen == nil {
		r.seen = make(map[string]bool)
	}
	if r.seen[key] {
		return
	}
	r.seen[key] = true
	r.diags = append(r.diags, d)
}

// allowed reports whether an allow pragma for the analyzer sits on the
// finding's line or the line directly above, and marks it used.
func (r *Runner) allowed(analyzer string, pos token.Position) bool {
	for _, p := range r.pragmas[pos.Filename] {
		if p.analyzer != analyzer || p.reason == "" {
			continue
		}
		if p.line == pos.Line || p.line == pos.Line-1 {
			p.used = true
			return true
		}
	}
	return false
}

// scanPragmas indexes every //faqlint:allow occurrence in the package
// and reports malformed ones (missing reason, unknown analyzer name).
// Pragma names validate against the full analyzer catalogue, not the
// runner's possibly-restricted subset (`faqlint -only facade` must not
// misreport a nopanic pragma as unknown).
func (r *Runner) scanPragmas(pkg *Package) {
	if r.pragmas == nil {
		r.pragmas = make(map[string][]*allowPragma)
	}
	known := make(map[string]bool)
	for _, a := range NewAnalyzers() {
		known[a.Name] = true
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				m := pragmaRE.FindStringSubmatch(text)
				if m == nil {
					if bm := bareAllowRE.FindStringSubmatch(text); bm != nil {
						r.report("faqlint", c.Pos(),
							"malformed pragma: want //faqlint:allow %s(<reason>)", bm[1])
					}
					continue
				}
				position := r.Loader.Fset().Position(c.Pos())
				p := &allowPragma{
					pos:      c.Pos(),
					line:     position.Line,
					file:     position.Filename,
					analyzer: m[1],
					reason:   strings.TrimSpace(m[2]),
				}
				if !known[p.analyzer] {
					r.report("faqlint", c.Pos(), "pragma names unknown analyzer %q", p.analyzer)
					continue
				}
				if p.reason == "" {
					r.report("faqlint", c.Pos(),
						"pragma for %q requires a reason: //faqlint:allow %s(<reason>)", p.analyzer, p.analyzer)
					continue
				}
				r.pragmas[p.file] = append(r.pragmas[p.file], p)
			}
		}
	}
}

// Run loads the patterns and executes every analyzer, returning the
// sorted findings. A non-nil error means the run itself failed (load
// or analyzer error), not that findings exist.
func (r *Runner) Run(patterns []string) ([]Diagnostic, error) {
	pkgs, err := r.Loader.Load(patterns)
	if err != nil {
		return nil, err
	}
	return r.RunPackages(pkgs)
}

// RunPackages executes the analyzers over already-loaded packages.
func (r *Runner) RunPackages(pkgs []*Package) ([]Diagnostic, error) {
	for _, pkg := range pkgs {
		r.scanPragmas(pkg)
	}
	for _, pkg := range pkgs {
		for _, a := range r.Analyzers {
			pass := &Pass{Analyzer: a, Fset: r.Loader.Fset(), Pkg: pkg, runner: r}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	for _, a := range r.Analyzers {
		if a.Finish == nil {
			continue
		}
		name := a.Name
		err := a.Finish(func(pos token.Pos, format string, args ...any) {
			r.report(name, pos, format, args...)
		})
		if err != nil {
			return nil, fmt.Errorf("lint: %s finish: %v", name, err)
		}
	}
	r.reportUnusedPragmas()
	sort.Slice(r.diags, func(i, j int) bool {
		a, b := r.diags[i], r.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return r.diags, nil
}

// reportUnusedPragmas flags allow pragmas that suppressed nothing —
// stale suppressions are contract documentation that has drifted from
// the code and must be deleted rather than accumulate. Only pragmas
// for analyzers that actually ran are judged: under a restricted
// `-only` run the other pragmas never had a finding to suppress.
func (r *Runner) reportUnusedPragmas() {
	ran := make(map[string]bool, len(r.Analyzers))
	for _, a := range r.Analyzers {
		ran[a.Name] = true
	}
	for _, ps := range r.pragmas {
		for _, p := range ps {
			if !p.used && ran[p.analyzer] {
				r.report("faqlint", p.pos, "unused pragma: no %s finding on this or the next line", p.analyzer)
			}
		}
	}
}

// NewAnalyzers builds a fresh instance of the full analyzer suite (the
// seven repo contracts). Fresh instances matter because some analyzers
// accumulate cross-package state consumed by Finish.
func NewAnalyzers() []*Analyzer {
	return []*Analyzer{
		NewFacade(DefaultFacadeConfig()),
		NewNoPanic(DefaultNoPanicConfig()),
		NewMapIter(DefaultMapIterConfig()),
		NewCtxFlow(DefaultCtxFlowConfig()),
		NewHotPath(DefaultHotPathConfig()),
		NewFailpoint(DefaultFailpointConfig()),
		NewMetricReg(DefaultMetricRegConfig()),
	}
}

// --- shared AST/type helpers used by several analyzers ---

// funcFor returns the top-level function declaration enclosing pos in
// the file, or nil.
func funcFor(f *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// calleeIdent unwraps a call's function expression to its identifier:
// `f(...)` yields f, `pkg.F(...)` yields F, anything else nil.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn
	case *ast.SelectorExpr:
		return fn.Sel
	}
	return nil
}

// isPkgFunc reports whether the call's callee resolves (via type info)
// to the named function of the named package.
func isPkgFunc(pass *Pass, call *ast.CallExpr, pkgPath, name string) bool {
	id := calleeIdent(call)
	if id == nil || id.Name != name {
		return false
	}
	obj := pass.Pkg.Info.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath
}
