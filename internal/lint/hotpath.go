package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathConfig scopes the kernel allocation-discipline contract.
type HotPathConfig struct {
	Packages []string
}

// DefaultHotPathConfig covers the relation kernels and the packed-key
// package — the layers whose 8000×-allocation win (PR 1) depends on
// uint64 packed keys instead of string-keyed state.
func DefaultHotPathConfig() HotPathConfig {
	return HotPathConfig{Packages: []string{
		"repro/internal/relation",
		"repro/internal/keys",
	}}
}

// NewHotPath builds the hotpath analyzer: no string-keyed map state
// and no string-concatenation keys inside kernel function bodies. The
// documented arity>MaxPacked fallbacks are annotated in source with
// //faqlint:allow hotpath(reason) — keeping every exception visible at
// the site it costs at — so any *new* string-keyed state is a build
// failure, pinning PR 1's allocation win against regression.
func NewHotPath(cfg HotPathConfig) *Analyzer {
	a := &Analyzer{
		Name: "hotpath",
		Doc:  "no string-keyed maps or string-concatenation keys in kernel functions outside the documented arity fallbacks",
	}
	a.Run = func(pass *Pass) error {
		if !matchPackage(cfg.Packages, pass.Pkg.ImportPath) {
			return nil
		}
		for i, f := range pass.Pkg.Files {
			if pass.Pkg.IsTestFile(i) {
				continue
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkHotPath(pass, fd)
			}
		}
		return nil
	}
	return a
}

func checkHotPath(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.MapType:
			if isStringType(pass.Pkg.Info.TypeOf(n.Key)) {
				pass.Reportf(n.Pos(),
					"string-keyed map state in a kernel function: pack the key columns (internal/keys) or annotate the documented fallback with //faqlint:allow hotpath(reason)")
			}
		case *ast.IndexExpr:
			// String concatenation building a map key at the index
			// site: allocates a fresh key string per probe.
			if _, isMap := underlyingMap(pass.Pkg.Info.TypeOf(n.X)); !isMap {
				return true
			}
			if bin, ok := n.Index.(*ast.BinaryExpr); ok && bin.Op == token.ADD &&
				isStringType(pass.Pkg.Info.TypeOf(bin)) {
				pass.Reportf(bin.Pos(),
					"string-concatenation map key on a kernel path: pack the key columns (internal/keys) or annotate with //faqlint:allow hotpath(reason)")
			}
		}
		return true
	})
}

func underlyingMap(t types.Type) (*types.Map, bool) {
	if t == nil {
		return nil, false
	}
	m, ok := t.Underlying().(*types.Map)
	return m, ok
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
