// Seeded sweep-membership violation, loaded as repro/internal/outsidefp
// — a package NOT in the chaos sweep's package list. Its correctly
// named TestChaos* test would never be run by `make chaos`.
package outsidefp

import (
	"testing"

	"repro/internal/fault"
)

func TestChaosLocal(t *testing.T) { // want `arms failpoints in tests but is not in the chaos sweep`
	defer fault.Reset()
	fault.Enable("outsidefp.x", fault.Config{Mode: fault.ModeError})
}
