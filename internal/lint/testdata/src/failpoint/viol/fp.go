// Seeded failpoint grammar, literal, and coverage violations, loaded
// as repro/internal/fixturefp (configured into the chaos sweep).
package fixturefp

import "repro/internal/fault"

var dynamicName = "fixturefp.dynamic"

var (
	siteDynamic = fault.Register(dynamicName)        // want `string-literal site name`
	siteBad     = fault.Register("BadGrammar")       // want `does not match the <pkg>\.<site> grammar`
	siteWrong   = fault.Register("other.site")       // want `segment must be "fixturefp"`
	siteGood    = fault.Register("fixturefp.good")   // covered by the chaos suite: must not flag
	siteOrphan  = fault.Register("fixturefp.orphan") // want `not referenced by any TestChaos`
)

var _ = []any{siteDynamic, siteBad, siteWrong, siteGood, siteOrphan}
