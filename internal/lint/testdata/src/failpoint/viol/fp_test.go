package fixturefp

import (
	"testing"

	"repro/internal/fault"
)

// chaosSites is the sweep's coverage list: every registered site must
// appear among a TestChaos* file's string literals. BadGrammar and
// other.site are listed so only their grammar findings fire, not a
// second coverage finding.
var chaosSites = []string{"fixturefp.good", "other.site", "BadGrammar"}

// TestChaosFixtureSweep arms sites directly and is named to the
// TestChaos* convention: must not flag.
func TestChaosFixtureSweep(t *testing.T) {
	defer fault.Reset()
	for _, site := range chaosSites {
		fault.Enable(site, fault.Config{Mode: fault.ModeError})
	}
}

// armHelper arms through a package-local helper: the fixed-point walk
// must classify its callers as arming tests.
func armHelper() {
	fault.Enable("fixturefp.good", fault.Config{Mode: fault.ModeError})
}

func TestArmsViaHelper(t *testing.T) { // want `arms failpoints but is not named TestChaos`
	defer fault.Reset()
	armHelper()
}

// TestNoArming never arms a failpoint: naming is unconstrained.
func TestNoArming(t *testing.T) {
	if len(chaosSites) == 0 {
		t.Fatal("fixture list empty")
	}
}
