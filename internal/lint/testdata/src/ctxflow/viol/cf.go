// Seeded ctxflow violations and boundary-guard traps, loaded as
// repro/internal/service (a serving-path package).
package ctxflowfix

import "context"

func callee(ctx context.Context) error { return ctx.Err() }

// freshRoot holds a request context but roots a new one: the
// cancellation-detachment violation.
func freshRoot(ctx context.Context) error {
	return callee(context.Background()) // want `fresh root context inside a ctx-taking function`
}

// todoNoCtx has no ctx parameter to thread — the fix is to accept one.
func todoNoCtx() error {
	return callee(context.TODO()) // want `context\.Background/TODO on the serving path`
}

// nilCtx drops the request context on the floor mid-path.
func nilCtx(ctx context.Context) error {
	return callee(nil) // want `nil context passed to a ctx-capable callee`
}

// guarded is the sanctioned nil-ctx boundary default: must not flag.
func guarded(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return callee(ctx)
}

// threaded derives from the request context: must not flag.
func threaded(ctx context.Context) error {
	ctx2, cancel := context.WithCancel(ctx)
	defer cancel()
	return callee(ctx2)
}

var _ = []any{freshRoot, todoNoCtx, nilCtx, guarded, threaded}
