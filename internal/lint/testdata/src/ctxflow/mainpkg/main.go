// Seeded func-main trap, loaded as repro/cmd/faqd: main is the process
// root and legitimately owns context.Background(); every other
// function on the serving path is held to the threading rule.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = run(ctx)
}

func run(ctx context.Context) error { return ctx.Err() }

func helper() error {
	return run(context.Background()) // want `context\.Background/TODO on the serving path`
}

var _ = helper
