// Seeded pragma-grammar findings: the escape hatch itself is linted,
// so a suppression can never silently rot.
package pragmafix

//faqlint:allow mapiter -- want `malformed pragma`
var a int

//faqlint:allow bogus(some reason) -- want `unknown analyzer`
var b int

//faqlint:allow nopanic() -- want `requires a reason`
var c int

//faqlint:allow hotpath(stale: this suppresses nothing) -- want `unused pragma`
var d int

var _ = []int{a, b, c, d}
