// Seeded hotpath violations and packed-key traps, loaded as
// repro/internal/relation (a kernel package).
package hotpathfix

// stringState allocates string-keyed map state in a kernel function:
// the allocation-discipline violation.
func stringState(n int) int {
	seen := make(map[string]int, n) // want `string-keyed map state in a kernel function`
	return len(seen)
}

// concatKey builds a fresh key string per probe.
func concatKey(m map[string]int, a, b string) int {
	return m[a+b] // want `string-concatenation map key`
}

// packedState is the contract-conforming shape: must not flag.
func packedState(n int) int {
	seen := make(map[uint64]int, n)
	return len(seen)
}

// annotatedFallback is a documented arity fallback: must not flag.
func annotatedFallback(n int) int {
	//faqlint:allow hotpath(fixture: documented arity fallback off the hot path)
	seen := make(map[string]int, n)
	return len(seen)
}

// intIndex adds ints to index a slice — no map, no string: must not flag.
func intIndex(xs []int, i, j int) int {
	return xs[i+j]
}

// precomputedKey probes with an existing string, allocating nothing:
// must not flag.
func precomputedKey(m map[string]int, k string) int {
	return m[k]
}

var _ = []any{stringState, concatKey, packedState, annotatedFallback, intIndex, precomputedKey}
