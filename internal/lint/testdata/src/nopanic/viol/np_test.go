package nopanicfix

// Test files are outside the contract (t.Fatal is the idiom there):
// must not flag.
func helperForTests() {
	panic("test files are exempt from nopanic")
}

var _ = helperForTests
