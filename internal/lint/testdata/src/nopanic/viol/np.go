// Seeded nopanic violations and near-miss traps, loaded as
// repro/internal/nopanicfix with a Contain entry for `contained`.
package nopanicfix

import (
	"errors"
	"log"
	"os"
)

// naked is the canonical violation: a bare panic in an internal package.
func naked() {
	panic("boom") // want `panic in repro/internal/nopanicfix`
}

func fatal() {
	log.Fatalf("dead: %v", errors.New("x")) // want `log\.Fatalf`
}

func exit() {
	os.Exit(1) // want `os\.Exit`
}

// MustParse is the sanctioned Must idiom (exported, free function,
// panic-on-error for statically-known inputs): must not flag.
func MustParse() {
	panic("must")
}

type thing struct{}

// MustDo has a receiver: the Must idiom covers free functions only.
func (thing) MustDo() {
	panic("method") // want `panic in repro/internal/nopanicfix`
}

// contained is whitelisted via the fixture's Contain config entry.
func contained() {
	panic("containment site")
}

// annotated carries the escape-hatch pragma with a reason.
func annotated() {
	//faqlint:allow nopanic(fixture: invariant check annotated on purpose)
	panic("annotated")
}

// shadowed calls a local function named panic — not the builtin.
func shadowed() {
	panic := func(string) {}
	panic("not the builtin")
}

var _ = []any{naked, fatal, exit, MustParse, contained, annotated, shadowed}
