// A second package claiming a family name the first fixture already
// registered: a cross-package clash the Finish pass must flag.
package othermr

import "repro/internal/obs"

var reg = obs.NewRegistry()

var mClash = reg.NewCounter("fixturemr_good_total", "Clashing registration.") // want `already registered by repro/internal/fixturemr`

var _ = mClash
