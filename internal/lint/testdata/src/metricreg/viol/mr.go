// Seeded metric-registration violations: dynamic names, bad grammar,
// missing help, and the allowed same-package re-registration idiom.
package fixturemr

import "repro/internal/obs"

var reg = obs.NewRegistry()

var dynamicName = "fixturemr_dynamic_total"

var (
	mDynamic = reg.NewCounter(dynamicName, "Dynamic name.")           // want `string-literal name`
	mBadName = reg.NewCounter("bad name!", "Bad grammar.")            // want `not a valid metric name`
	mNoHelp  = reg.NewGauge("fixturemr_nohelp", "")                   // want `help text must be non-empty`
	mBlank   = reg.NewGauge("fixturemr_blank", "   ")                 // want `help text must be non-empty`
	mDynHelp = reg.NewCounter("fixturemr_dynhelp_total", dynamicName) // want `help text must be a string literal`
	mGood    = reg.NewCounter("fixturemr_good_total", "A documented counter.")
	// Same-package re-registration is the idempotent idiom (per-semiring
	// services binding one shared family): must not flag.
	mAgain = reg.NewCounter("fixturemr_good_total", "A documented counter.")
	mHist  = reg.NewHistogramVec("fixturemr_latency_ns", "Latency histogram.", obs.DurationBucketsNS, "semiring")
)

var _ = []any{mDynamic, mBadName, mNoHelp, mBlank, mDynHelp, mGood, mAgain, mHist}
