// Test files are exempt: throwaway registries in tests may mint names
// dynamically and without help text — none of these may flag.
package fixturemr

import "repro/internal/obs"

var testReg = obs.NewRegistry()

var testDynamic = testReg.NewCounter(dynamicName, "")

var _ = testDynamic
