package main

// Test files may reach internals (the contract mirrors what a built
// binary links, i.e. `go list -f .Imports`): must not flag.

import (
	"testing"

	_ "repro/internal/keys"
)

func TestFixtureOnly(t *testing.T) {}
