// Seeded allowlisted-package fixture: loaded as repro/cmd/faqd, whose
// entry permits only the public faqs façade. The façade import is the
// near-miss trap (must not flag); the internal import is the violation.
package main

import (
	_ "repro/faqs"
	_ "repro/internal/plan" // want `bypasses the faqs façade`
)

func main() {}
