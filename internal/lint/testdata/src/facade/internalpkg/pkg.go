// Seeded scope trap: the facade contract covers cmd/ and examples/
// only — an internal package importing internals must not flag.
package notacmd

import _ "repro/internal/keys"
