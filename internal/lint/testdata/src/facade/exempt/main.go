// Seeded exempt-harness trap: loaded as repro/cmd/faqbench, which the
// config exempts by design (it regenerates the paper tables from the
// internals). Nothing here may flag.
package main

import _ "repro/internal/relation"

func main() {}
