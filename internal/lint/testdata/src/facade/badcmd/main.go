// Seeded facade violations: a cmd/ program with no allowlist entry —
// every module import is a finding, façade or not.
package main

import (
	_ "repro/faqs"          // want `no façade allowlist entry`
	_ "repro/internal/keys" // want `no façade allowlist entry`
)

func main() {}
