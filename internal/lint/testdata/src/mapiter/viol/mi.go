// Seeded mapiter violations and deterministic-idiom traps, loaded as
// repro/internal/protocol (a determinism-critical package) with
// sortedUnique configured as a repo-specific sort entry point.
package mapiterfix

import (
	"slices"
	"sort"
)

// raw iterates a map and consumes values in iteration order: the
// canonical violation.
func raw(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration order is nondeterministic`
		total += v
	}
	return total
}

// collectThenSort is the canonical deterministic idiom: must not flag.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectThenSlicesSort uses the slices package variant: must not flag.
func collectThenSlicesSort(m map[int]bool) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// collectNeverSorted looks like the idiom but the keys are returned in
// map order: the trap the sort check exists for.
func collectNeverSorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is nondeterministic`
		keys = append(keys, k)
	}
	return keys
}

// blankCount binds no iteration variables: order-free by construction.
func blankCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// annotated carries the escape-hatch pragma with a reason.
func annotated(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	//faqlint:allow mapiter(fixture: order-free copy, every write keyed by k)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// sliceRange is not a map: must not flag.
func sliceRange(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// sortedUnique is the configured repo-specific sort entry point.
func sortedUnique(xs []string) []string {
	sort.Strings(xs)
	return xs
}

// collectThenCustomSort sorts through the configured SortFuncs entry:
// must not flag.
func collectThenCustomSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	keys = sortedUnique(keys)
	return keys
}

var _ = []any{raw, collectThenSort, collectThenSlicesSort, collectNeverSorted,
	blankCount, annotated, sliceRange, collectThenCustomSort}
