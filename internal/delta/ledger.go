package delta

import (
	"repro/internal/keys"
	"repro/internal/relation"
	"repro/internal/semiring"
)

// ledger is the per-edge contribution multiset of the recompute
// strategy: idempotent ⊕ (min, max) destroys information, so the
// factor annotation alone cannot answer "what remains after deleting
// this contribution?". Each listed tuple keeps the full multiset of
// values inserted for it; the factor is rebuilt by ⊕-folding each
// tuple's contributions. The pre-existing relation seeds one
// contribution per listed tuple (its merged annotation).
//
// entries is the iteration source (insertion order, deterministic);
// index is lookup-only, so the mapiter determinism contract holds.
type ledger[T any] struct {
	index   map[string]int
	entries []ledgerEntry[T]
}

type ledgerEntry[T any] struct {
	row  []int32
	vals []T // contribution multiset, insertion order
}

// ledgerOf seeds a ledger from an existing relation.
func ledgerOf[T any](f *relation.Relation[T]) *ledger[T] {
	lg := &ledger[T]{index: make(map[string]int, f.Len())}
	for i := 0; i < f.Len(); i++ {
		row := append([]int32(nil), f.Tuple(i)...)
		lg.index[keys.EncodeCols(row, nil)] = len(lg.entries)
		lg.entries = append(lg.entries, ledgerEntry[T]{row: row, vals: []T{f.Value(i)}})
	}
	return lg
}

// clone deep-copies the ledger (copy-on-write staging: a failed update
// must leave the committed ledger untouched).
func (lg *ledger[T]) clone() *ledger[T] {
	out := &ledger[T]{
		index:   make(map[string]int, len(lg.index)),
		entries: make([]ledgerEntry[T], len(lg.entries)),
	}
	for i, e := range lg.entries {
		out.index[keys.EncodeCols(e.row, nil)] = i
		out.entries[i] = ledgerEntry[T]{row: e.row, vals: append([]T(nil), e.vals...)}
	}
	return out
}

func rowOf(t []int) []int32 {
	row := make([]int32, len(t))
	for i, x := range t {
		row[i] = int32(x)
	}
	return row
}

// insert appends one contribution for the tuple.
func (lg *ledger[T]) insert(t []int, val T) {
	row := rowOf(t)
	k := keys.EncodeCols(row, nil)
	if i, ok := lg.index[k]; ok {
		lg.entries[i].vals = append(lg.entries[i].vals, val)
		return
	}
	lg.index[k] = len(lg.entries)
	lg.entries = append(lg.entries, ledgerEntry[T]{row: row, vals: []T{val}})
}

// remove deletes one semiring-equal contribution of the tuple,
// reporting false when none is listed. Emptied entries remain as
// tombstones (build skips them); the index stays intact.
func (lg *ledger[T]) remove(s semiring.Semiring[T], t []int, val T) bool {
	row := rowOf(t)
	i, ok := lg.index[keys.EncodeCols(row, nil)]
	if !ok {
		return false
	}
	vals := lg.entries[i].vals
	for j, v := range vals {
		if s.Equal(v, val) {
			lg.entries[i].vals = append(vals[:j:j], vals[j+1:]...)
			return true
		}
	}
	return false
}

// build rebuilds the factor: one row per tuple with a non-empty
// contribution multiset, annotated with the ⊕-fold of its
// contributions (Build re-sorts and drops ⊕-zeros, so the result is
// exactly what a from-scratch Builder over the same contributions
// produces).
func (lg *ledger[T]) build(s semiring.Semiring[T], schema []int) *relation.Relation[T] {
	b := relation.NewBuilderHint(s, schema, len(lg.entries))
	for _, e := range lg.entries {
		if len(e.vals) == 0 {
			continue
		}
		v := e.vals[0]
		for _, w := range e.vals[1:] {
			v = s.Add(v, w)
		}
		b.AddRow(e.row, v)
	}
	return b.Build()
}
