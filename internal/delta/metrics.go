package delta

import "repro/internal/obs"

// Materialized-view instrumentation on the process-global registry,
// aggregated across every handle in the process. Per-handle counts
// remain available via Stats.
var (
	metricUpdates = obs.Default().NewCounter("faq_delta_updates_total",
		"Materialized-view updates applied (any strategy).")
	metricRecomputes = obs.Default().NewCounter("faq_delta_recompute_fallbacks_total",
		"Updates served by the per-node recompute fallback instead of delta propagation.")
)
