package delta_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/delta"
	"repro/internal/delta/churn"
	"repro/internal/faq"
	"repro/internal/relation"
	"repro/internal/semiring"
	"repro/internal/workload"
)

// fuzzTpl is a deliberately tiny shape (two chained edges, domain 4) so
// the fuzzer's byte budget reaches deep op sequences.
var fuzzTpl = workload.Template{Name: "fuzz-path", Spec: "X,Y;Y,Z", Free: []string{"X"}}

const fuzzDom = 4

// fuzzDrive decodes data as an op stream against one semiring: chunks
// of 3 bytes [op, a, b] where op%4 picks insert (0,1), delete-live (2),
// or delete-arbitrary (3); a and b choose edge, row, and value. After
// every op the materialized answer must equal a from-scratch solve over
// the independently maintained model; illegal deletes must fail with
// the documented typed error and leave the handle unchanged.
func fuzzDrive[T any](t *testing.T, s semiring.Semiring[T], data []byte,
	valOf func(byte) T, ringDeletes bool, wantDeleteErr error) {
	t.Helper()
	ctx := context.Background()
	q, err := churn.BuildQuery(s, fuzzTpl, fuzzDom, nil)
	if err != nil {
		t.Fatal(err)
	}
	model, err := churn.NewModel(q)
	if err != nil {
		t.Fatal(err)
	}
	m, err := delta.Materialize(ctx, q, model.GHD(), delta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	check := func(step int) {
		got, err := m.Answer()
		if err != nil {
			t.Fatalf("step %d: Answer: %v", step, err)
		}
		want, err := model.Solve()
		if err != nil {
			t.Fatalf("step %d: reference solve: %v", step, err)
		}
		if !relation.Equal(s, got, want) {
			t.Fatalf("step %d: materialized %v != rebuild %v", step, got, want)
		}
	}
	check(0)

	numEdges := q.H.NumEdges()
	for i := 0; i+2 < len(data); i += 3 {
		op, a, b := data[i], data[i+1], data[i+2]
		e := int(op/4) % numEdges
		arity := len(q.H.Edge(e))
		row := make([]int, arity)
		row[0] = int(a) % fuzzDom
		if arity > 1 {
			row[1] = int(b) % fuzzDom
		}
		val := valOf(b)
		switch op % 4 {
		case 0, 1: // insert
			model.Insert(e, row, val)
			if err := m.Update(ctx, delta.Batch[T]{Edge: e, Inserts: []delta.Tuple[T]{{Row: row, Val: val}}}); err != nil {
				t.Fatalf("step %d: insert: %v", i, err)
			}
		case 2: // delete a live contribution
			if model.Live(e) == 0 {
				continue
			}
			lrow, lval := model.Contribution(e, int(a)%model.Live(e))
			if !model.TryDelete(e, lrow, lval) {
				t.Fatalf("step %d: model lost its own contribution", i)
			}
			if err := m.Update(ctx, delta.Batch[T]{Edge: e, Deletes: []delta.Tuple[T]{{Row: lrow, Val: lval}}}); err != nil {
				t.Fatalf("step %d: live delete: %v", i, err)
			}
		case 3: // arbitrary delete, possibly of nothing
			if ringDeletes {
				// Ring semirings accept any delete: it ⊕-adds the
				// inverse (over-deletes leave negative annotations).
				if err := model.RingDelete(e, row, val); err != nil {
					t.Fatal(err)
				}
				if err := m.Update(ctx, delta.Batch[T]{Edge: e, Deletes: []delta.Tuple[T]{{Row: row, Val: val}}}); err != nil {
					t.Fatalf("step %d: ring delete: %v", i, err)
				}
				break
			}
			live := model.TryDelete(e, row, val)
			err := m.Update(ctx, delta.Batch[T]{Edge: e, Deletes: []delta.Tuple[T]{{Row: row, Val: val}}})
			if live && err != nil {
				t.Fatalf("step %d: delete of a live contribution failed: %v", i, err)
			}
			if !live && !errors.Is(err, wantDeleteErr) {
				t.Fatalf("step %d: illegal delete error = %v, want %v", i, err, wantDeleteErr)
			}
		}
		check(i + 1)
	}
}

// FuzzDeltaApply feeds byte-decoded insert/delete sequences through all
// three maintenance strategies (ring via Count, recompute via MinPlus,
// support via Bool): the handle must never panic and never diverge from
// a from-scratch rebuild, and illegal deletes must fail typed.
func FuzzDeltaApply(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 1, 2})
	f.Add([]byte{1, 0, 1, 2, 2, 2, 0, 1, 1, 2, 0, 1, 3, 0, 1})
	f.Add([]byte{2, 4, 2, 3, 6, 1, 1, 7, 2, 2, 3, 3, 3, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		ops := data[1:]
		switch data[0] % 3 {
		case 0:
			fuzzDrive[int64](t, semiring.Count{}, ops,
				func(b byte) int64 { return int64(b%5) - 2 }, true, nil)
		case 1:
			fuzzDrive[float64](t, semiring.MinPlus{}, ops,
				func(b byte) float64 { return float64(b % 6) }, false, delta.ErrNoSuchTuple)
		case 2:
			fuzzDrive[bool](t, semiring.Bool{}, ops,
				func(byte) bool { return true }, false, delta.ErrNegativeSupport)
		}
	})
}

// TestFuzzSeedsDeterministic replays the committed corpus shapes as a
// plain test, so the differential harness runs even when the fuzz
// engine is skipped (e.g. -run excludes fuzz targets in CI).
func TestFuzzSeedsDeterministic(t *testing.T) {
	seeds := [][]byte{
		{0, 0, 0, 1, 1, 2, 8, 3, 0, 3, 2, 1, 11, 0, 4},
		{1, 0, 1, 2, 2, 2, 0, 1, 1, 2, 0, 1, 3, 0, 1, 15, 2, 2},
		{2, 4, 2, 3, 6, 1, 1, 7, 2, 2, 3, 3, 3, 0, 0, 7, 1, 1},
	}
	for _, data := range seeds {
		ops := data[1:]
		switch data[0] % 3 {
		case 0:
			fuzzDrive[int64](t, semiring.Count{}, ops,
				func(b byte) int64 { return int64(b%5) - 2 }, true, nil)
		case 1:
			fuzzDrive[float64](t, semiring.MinPlus{}, ops,
				func(b byte) float64 { return float64(b % 6) }, false, delta.ErrNoSuchTuple)
		case 2:
			fuzzDrive[bool](t, semiring.Bool{}, ops,
				func(byte) bool { return true }, false, delta.ErrNegativeSupport)
		}
	}
	// Sanity: the fuzz shape plans to a two-node path GHD.
	q, err := churn.BuildQuery(semiring.Count{}, fuzzTpl, fuzzDom, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := faq.PlanGHD(q.H, q.Free); err != nil {
		t.Fatal(err)
	}
}
