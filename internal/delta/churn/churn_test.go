package churn_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/delta"
	"repro/internal/delta/churn"
	"repro/internal/semiring"
	"repro/internal/workload"
)

// driver runs one churn sequence for a concrete semiring; the table
// below instantiates the generic harness per value type.
type driver struct {
	name     string
	strategy delta.Strategy
	run      func(t *testing.T, tpl workload.Template, mix churn.Mix, cfg churn.Config) churn.Result
}

func drive[T any](t *testing.T, s semiring.Semiring[T], tpl workload.Template, mix churn.Mix, cfg churn.Config, val func(*rand.Rand) T) churn.Result {
	t.Helper()
	res, err := churn.Run(context.Background(), s, tpl, mix, cfg, val)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// drivers covers every maintained strategy: ring deltas (Count,
// SumProduct, F2), support counting (Bool), and the recompute fallback
// (MinPlus). Annotations are integer-valued so even the float rings
// compare bit-identically against the from-scratch rebuild.
func drivers() []driver {
	return []driver{
		{"bool", delta.StrategySupport, func(t *testing.T, tpl workload.Template, mix churn.Mix, cfg churn.Config) churn.Result {
			return drive(t, semiring.Bool{}, tpl, mix, cfg, func(*rand.Rand) bool { return true })
		}},
		{"count", delta.StrategyRing, func(t *testing.T, tpl workload.Template, mix churn.Mix, cfg churn.Config) churn.Result {
			return drive(t, semiring.Count{}, tpl, mix, cfg, func(r *rand.Rand) int64 { return int64(1 + r.Intn(3)) })
		}},
		{"f2", delta.StrategyRing, func(t *testing.T, tpl workload.Template, mix churn.Mix, cfg churn.Config) churn.Result {
			return drive(t, semiring.F2{}, tpl, mix, cfg, func(*rand.Rand) byte { return 1 })
		}},
		{"sumproduct", delta.StrategyRing, func(t *testing.T, tpl workload.Template, mix churn.Mix, cfg churn.Config) churn.Result {
			return drive(t, semiring.SumProduct{}, tpl, mix, cfg, func(r *rand.Rand) float64 { return float64(1 + r.Intn(3)) })
		}},
		{"minplus", delta.StrategyRecompute, func(t *testing.T, tpl workload.Template, mix churn.Mix, cfg churn.Config) churn.Result {
			return drive(t, semiring.MinPlus{}, tpl, mix, cfg, func(r *rand.Rand) float64 { return float64(r.Intn(6)) })
		}},
	}
}

// TestChurnDifferential is the headline acceptance matrix: ≥1000-op
// uniform churn per template × semiring, swept at 1/2/8 workers (each
// run gets a private pool, so subtests parallelize safely), checking
// the materialized answer against a from-scratch solve after every op.
func TestChurnDifferential(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for _, tpl := range workload.Templates() {
			for _, d := range drivers() {
				workers, tpl, d := workers, tpl, d
				t.Run(tpl.Name+"/"+d.name+"/w"+itoa(workers), func(t *testing.T) {
					t.Parallel()
					cfg := churn.Config{
						Seed:    int64(1000*workers + len(tpl.Name)),
						Ops:     1000,
						Workers: workers,
					}
					mix, _ := churn.MixByName("uniform")
					res := d.run(t, tpl, mix, cfg)
					if res.Ops != cfg.Ops {
						t.Fatalf("ran %d of %d ops", res.Ops, cfg.Ops)
					}
					if res.Strategy != d.strategy {
						t.Fatalf("strategy = %v, want %v", res.Strategy, d.strategy)
					}
					if res.Inserts == 0 || res.Deletes == 0 {
						t.Fatalf("degenerate mix: %d inserts, %d deletes", res.Inserts, res.Deletes)
					}
				})
			}
		}
	}
}

// TestChurnAdversarialMixes drives the named adversarial distributions
// — drain-to-empty, duplicate reinsertion, single-leaf hammering, and
// root-bag churn — across representative strategies and both an
// acyclic and a cyclic (fat-root) template.
func TestChurnAdversarialMixes(t *testing.T) {
	tpls := []string{"path7", "tri-pendant"}
	reps := []string{"count", "minplus", "bool"}
	for _, mix := range churn.Mixes() {
		if mix.Name == "uniform" {
			continue
		}
		for _, tplName := range tpls {
			for _, d := range drivers() {
				if !contains(reps, d.name) {
					continue
				}
				mix, d := mix, d
				tpl, ok := workload.TemplateByName(tplName)
				if !ok {
					t.Fatalf("unknown template %s", tplName)
				}
				t.Run(mix.Name+"/"+tpl.Name+"/"+d.name, func(t *testing.T) {
					t.Parallel()
					cfg := churn.Config{Seed: int64(len(mix.Name)*31 + len(tpl.Name)), Ops: 400}
					res := d.run(t, tpl, mix, cfg)
					if mix.Name == "delete-everything" && res.Drained == 0 {
						t.Fatal("delete-everything mix never drained an edge")
					}
				})
			}
		}
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
