// Package churn is the randomized differential harness for incremental
// maintenance (internal/delta): seeded op sequences of interleaved
// inserts/deletes over the standing workload templates, asserting after
// every op that the materialized answer equals a from-scratch
// faq.SolveGHD over an independently maintained model of the base
// relations — bit-identical for exact semirings, tolerance-equal (with
// identical layouts, since the generator draws integer-valued
// annotations) for the float rings.
package churn

import (
	"fmt"

	"repro/internal/faq"
	"repro/internal/ghd"
	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/semiring"
	"repro/internal/workload"
)

// contrib is one live contribution of the model: a tuple plus the
// annotation it was inserted with.
type contrib[T any] struct {
	row []int
	val T
}

// Model re-implements the documented per-edge update semantics
// independently of internal/delta: every base relation is a multiset
// of live contributions, an insert appends one, a delete removes one
// semiring-equal contribution (or, for ring semirings, appends the
// ⊕-inverse), and the factor is the ⊕-fold of what remains. Reference
// answers come from a from-scratch solve over the rebuilt factors, so
// a divergence in the delta propagation cannot hide in the model.
type Model[T any] struct {
	s        semiring.Semiring[T]
	h        *hypergraph.Hypergraph
	g        *ghd.GHD
	free     []int
	dom      int
	contribs [][]contrib[T]
}

// NewModel seeds a model from a query's initial factors (one live
// contribution per listed tuple, mirroring how delta seeds its
// recompute ledgers) and plans its GHD.
func NewModel[T any](q *faq.Query[T]) (*Model[T], error) {
	g, err := faq.PlanGHD(q.H, q.Free)
	if err != nil {
		return nil, err
	}
	m := &Model[T]{s: q.S, h: q.H, g: g, free: q.Free, dom: q.DomSize,
		contribs: make([][]contrib[T], len(q.Factors))}
	for e, f := range q.Factors {
		for i := 0; i < f.Len(); i++ {
			t := f.Tuple(i)
			row := make([]int, len(t))
			for k, x := range t {
				row[k] = int(x)
			}
			m.contribs[e] = append(m.contribs[e], contrib[T]{row: row, val: f.Value(i)})
		}
	}
	return m, nil
}

// GHD returns the planned decomposition (shared with the handle under
// test, so both sides run the same tree).
func (m *Model[T]) GHD() *ghd.GHD { return m.g }

// Live returns the number of live contributions on edge e.
func (m *Model[T]) Live(e int) int { return len(m.contribs[e]) }

// Contribution returns live contribution i of edge e (the delete
// targets generators draw from).
func (m *Model[T]) Contribution(e, i int) ([]int, T) {
	c := m.contribs[e][i]
	return c.row, c.val
}

// Insert appends one live contribution.
func (m *Model[T]) Insert(e int, row []int, val T) {
	m.contribs[e] = append(m.contribs[e], contrib[T]{row: append([]int(nil), row...), val: val})
}

// TryDelete removes the first live contribution equal to (row, val),
// reporting false when none is listed — the model twin of the
// support/ledger delete.
func (m *Model[T]) TryDelete(e int, row []int, val T) bool {
	cs := m.contribs[e]
	for i, c := range cs {
		if sameRow(c.row, row) && m.s.Equal(c.val, val) {
			m.contribs[e] = append(cs[:i:i], cs[i+1:]...)
			return true
		}
	}
	return false
}

// RingDelete appends the ⊕-inverse contribution — the unconditional
// ring-semiring delete rule (deleting more than was inserted leaves a
// negative annotation; Count is ℤ).
func (m *Model[T]) RingDelete(e int, row []int, val T) error {
	nv, err := negValue(m.s, val)
	if err != nil {
		return err
	}
	m.Insert(e, row, nv)
	return nil
}

func sameRow(a []int, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// negValue is the model's own ⊕-inverse table (deliberately separate
// from delta's negOf).
func negValue[T any](s semiring.Semiring[T], v T) (T, error) {
	switch any(s).(type) {
	case semiring.Count:
		c := any(v).(int64)
		return any(-c).(T), nil
	case semiring.SumProduct:
		f := any(v).(float64)
		return any(-f).(T), nil
	case semiring.F2:
		return v, nil
	}
	var zero T
	return zero, fmt.Errorf("churn: semiring %T has no ⊕-inverse", s)
}

// Factors rebuilds every base relation from the live contributions.
func (m *Model[T]) Factors() []*relation.Relation[T] {
	out := make([]*relation.Relation[T], len(m.contribs))
	for e, cs := range m.contribs {
		b := relation.NewBuilderHint(m.s, m.h.Edge(e), len(cs))
		for _, c := range cs {
			b.Add(c.row, c.val)
		}
		out[e] = b.Build()
	}
	return out
}

// Solve runs the from-scratch reference: a full faq.SolveGHD over the
// rebuilt factors on the shared decomposition.
func (m *Model[T]) Solve() (*relation.Relation[T], error) {
	q := &faq.Query[T]{S: m.s, H: m.h, Factors: m.Factors(), Free: m.free, DomSize: m.dom}
	ans, _, err := faq.SolveGHD(nil, q, m.g, faq.SolveOptions{})
	return ans, err
}

// BuildQuery assembles a typed query over a workload template with the
// given factors (nil, or nil entries, become empty relations) — the
// shared construction of the harness, the fuzz target, and the
// incremental benchmark.
func BuildQuery[T any](s semiring.Semiring[T], tpl workload.Template, dom int, factors []*relation.Relation[T]) (*faq.Query[T], error) {
	hb := hypergraph.NewBuilder()
	for _, names := range tpl.Edges() {
		hb.Edge(names...)
	}
	h := hb.Build()
	if factors == nil {
		factors = make([]*relation.Relation[T], h.NumEdges())
	}
	for e := range factors {
		if factors[e] == nil {
			factors[e] = relation.Empty[T](h.Edge(e))
		}
	}
	free := make([]int, 0, len(tpl.Free))
	for _, name := range tpl.Free {
		id := hb.VertexID(name)
		if id < 0 {
			return nil, fmt.Errorf("churn: template %s free variable %q in no edge", tpl.Name, name)
		}
		free = append(free, id)
	}
	q := &faq.Query[T]{S: s, H: h, Factors: factors, Free: free, DomSize: dom}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}
