package churn

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/delta"
	"repro/internal/exec"
	"repro/internal/relation"
	"repro/internal/semiring"
	"repro/internal/workload"
)

// Target selects which edges a mix's ops land on.
type Target int

const (
	// TargetAll draws a uniform edge per op.
	TargetAll Target = iota
	// TargetLeaf pins every op to a single leaf edge (deepest GHD
	// node), so updates exercise the longest propagation path.
	TargetLeaf
	// TargetRoot pins ops to the root bag's designated edges —
	// propagation paths of length one, and on tri-pendant a fat
	// multi-edge core node.
	TargetRoot
)

// Mix is one adversarial op distribution.
type Mix struct {
	Name    string
	InsertW int // relative insert weight
	DeleteW int // relative delete weight
	// Reinsert biases inserts toward tuples already inserted during
	// the run, accumulating duplicate contributions (support counts,
	// ledger multisets, XOR cancellation).
	Reinsert bool
	Target   Target
}

// Mixes returns the standing adversarial mixes from the harness spec.
func Mixes() []Mix {
	return []Mix{
		{Name: "uniform", InsertW: 3, DeleteW: 2},
		// Heavy deletes drain edges to empty (the answer collapses to
		// empty) and then rebuild them.
		{Name: "delete-everything", InsertW: 1, DeleteW: 5},
		{Name: "reinsert-duplicates", InsertW: 4, DeleteW: 2, Reinsert: true},
		{Name: "touch-one-leaf", InsertW: 3, DeleteW: 2, Target: TargetLeaf},
		{Name: "churn-the-root-bag", InsertW: 3, DeleteW: 3, Target: TargetRoot},
	}
}

// MixByName looks a standing mix up by name.
func MixByName(name string) (Mix, bool) {
	for _, m := range Mixes() {
		if m.Name == name {
			return m, true
		}
	}
	return Mix{}, false
}

// Config sizes one churn run.
type Config struct {
	Seed           int64
	Ops            int // op count; the answer is checked after every op
	InitialPerEdge int // tuples seeded per edge before the run (default 24)
	Dom            int // domain size (default 8)
	Workers        int // handle pool width (0 = the process default pool)
}

// Result summarizes a completed run.
type Result struct {
	Ops      int
	Inserts  int
	Deletes  int
	Drained  int // ops that left the target edge empty
	Strategy delta.Strategy
}

// Run drives one seeded churn sequence: materialize the template under
// s, then interleave inserts and deletes per mix, asserting after every
// op that the handle's answer equals a from-scratch solve over the
// independently maintained model. randVal draws insert annotations
// (keep them integer-valued so float comparisons are exact).
func Run[T any](ctx context.Context, s semiring.Semiring[T], tpl workload.Template, mix Mix, cfg Config, randVal func(*rand.Rand) T) (Result, error) {
	if cfg.InitialPerEdge == 0 {
		cfg.InitialPerEdge = 24
	}
	if cfg.Dom == 0 {
		cfg.Dom = 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	edges := tpl.Edges()
	// BuildQuery assigns vertex ids (nil factors become empty
	// relations); seed real factors against its schemas below.
	q, err := BuildQuery(s, tpl, cfg.Dom, nil)
	if err != nil {
		return Result{}, err
	}
	for e := range edges {
		b := relation.NewBuilderHint(s, q.H.Edge(e), cfg.InitialPerEdge)
		for i := 0; i < cfg.InitialPerEdge; i++ {
			b.Add(randRow(rng, len(q.H.Edge(e)), cfg.Dom), randVal(rng))
		}
		q.Factors[e] = b.Build()
	}

	model, err := NewModel(q)
	if err != nil {
		return Result{}, err
	}
	var dopts delta.Options
	if cfg.Workers > 0 {
		dopts.Pool = exec.New(cfg.Workers)
	}
	m, err := delta.Materialize(ctx, q, model.GHD(), dopts)
	if err != nil {
		return Result{}, err
	}
	defer m.Close()

	res := Result{Strategy: m.Strategy()}
	targets := targetEdges(mix.Target, model, len(edges))
	var seen [][]int // previously inserted rows per run, for Reinsert
	check := func(op int) error {
		got, err := m.Answer()
		if err != nil {
			return fmt.Errorf("op %d: Answer: %w", op, err)
		}
		want, err := model.Solve()
		if err != nil {
			return fmt.Errorf("op %d: reference solve: %w", op, err)
		}
		if !relation.Equal(s, got, want) {
			return fmt.Errorf("churn divergence: %s/%s/%T seed %d op %d: materialized %v != rebuild %v",
				tpl.Name, mix.Name, s, cfg.Seed, op, got, want)
		}
		return nil
	}
	if err := check(0); err != nil {
		return res, err
	}

	for op := 1; op <= cfg.Ops; op++ {
		e := targets[rng.Intn(len(targets))]
		del := rng.Intn(mix.InsertW+mix.DeleteW) >= mix.InsertW
		if del && model.Live(e) == 0 {
			del = false // nothing live to delete: flip to insert
		}
		var batch delta.Batch[T]
		batch.Edge = e
		if del {
			row, val := model.Contribution(e, rng.Intn(model.Live(e)))
			if !model.TryDelete(e, row, val) {
				return res, fmt.Errorf("op %d: model lost its own contribution", op)
			}
			batch.Deletes = []delta.Tuple[T]{{Row: row, Val: val}}
			res.Deletes++
			if model.Live(e) == 0 {
				res.Drained++
			}
		} else {
			var row []int
			if mix.Reinsert && len(seen) > 0 && rng.Intn(2) == 0 {
				cand := seen[rng.Intn(len(seen))]
				if len(cand) == len(q.H.Edge(e)) {
					row = cand
				}
			}
			if row == nil {
				row = randRow(rng, len(q.H.Edge(e)), cfg.Dom)
			}
			val := randVal(rng)
			model.Insert(e, row, val)
			seen = append(seen, row)
			batch.Inserts = []delta.Tuple[T]{{Row: row, Val: val}}
			res.Inserts++
		}
		if err := m.Update(ctx, batch); err != nil {
			return res, fmt.Errorf("op %d (edge %d, delete=%v): %w", op, e, del, err)
		}
		if err := check(op); err != nil {
			return res, err
		}
		res.Ops++
	}
	return res, nil
}

func randRow(rng *rand.Rand, arity, dom int) []int {
	row := make([]int, arity)
	for i := range row {
		row[i] = rng.Intn(dom)
	}
	return row
}

// targetEdges resolves a Target to concrete edge indices on the
// model's decomposition.
func targetEdges[T any](target Target, model *Model[T], numEdges int) []int {
	g := model.GHD()
	switch target {
	case TargetLeaf:
		depthOf := func(v int) int {
			d := 0
			for g.Parent[v] >= 0 {
				v, d = g.Parent[v], d+1
			}
			return d
		}
		deepEdge, deepDepth := 0, -1
		for e := 0; e < numEdges; e++ {
			if d := depthOf(g.NodeOf[e]); d > deepDepth {
				deepEdge, deepDepth = e, d
			}
		}
		return []int{deepEdge}
	case TargetRoot:
		var out []int
		for e := 0; e < numEdges; e++ {
			if g.NodeOf[e] == g.Root {
				out = append(out, e)
			}
		}
		if len(out) > 0 {
			return out
		}
	}
	out := make([]int, numEdges)
	for e := range out {
		out[e] = e
	}
	return out
}
