package delta_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/delta"
	"repro/internal/delta/churn"
	"repro/internal/faq"
	"repro/internal/relation"
	"repro/internal/semiring"
	"repro/internal/workload"
)

// materializeTpl builds a seeded query over a workload template and
// materializes it; returns the handle plus the query (whose factors the
// tests mutate in parallel to form references).
func materializeTpl[T any](t *testing.T, s semiring.Semiring[T], tplName string, rows map[int][]delta.Tuple[T]) (*delta.Materialized[T], *faq.Query[T]) {
	t.Helper()
	tpl, ok := workload.TemplateByName(tplName)
	if !ok {
		t.Fatalf("unknown template %s", tplName)
	}
	q, err := churn.BuildQuery(s, tpl, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	for e, ts := range rows {
		b := relation.NewBuilder(s, q.H.Edge(e))
		for _, tu := range ts {
			b.Add(tu.Row, tu.Val)
		}
		q.Factors[e] = b.Build()
	}
	g, err := faq.PlanGHD(q.H, q.Free)
	if err != nil {
		t.Fatal(err)
	}
	m, err := delta.Materialize(context.Background(), q, g, delta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m, q
}

// pathRows seeds every edge of path7 with the diagonal pairs (i, i) for
// i in 0..3, so the path joins end to end.
func pathRows[T any](one T) map[int][]delta.Tuple[T] {
	rows := map[int][]delta.Tuple[T]{}
	for e := 0; e < 7; e++ {
		for i := 0; i < 4; i++ {
			rows[e] = append(rows[e], delta.Tuple[T]{Row: []int{i, i}, Val: one})
		}
	}
	return rows
}

func answerOf[T any](t *testing.T, m *delta.Materialized[T]) *relation.Relation[T] {
	t.Helper()
	ans, err := m.Answer()
	if err != nil {
		t.Fatal(err)
	}
	return ans
}

func TestStrategySelection(t *testing.T) {
	cases := []struct {
		name string
		want delta.Strategy
		got  delta.Strategy
	}{}
	mb, _ := materializeTpl(t, semiring.Bool{}, "path7", pathRows(true))
	cases = append(cases, struct {
		name string
		want delta.Strategy
		got  delta.Strategy
	}{"bool", delta.StrategySupport, mb.Strategy()})
	mc, _ := materializeTpl(t, semiring.Count{}, "path7", pathRows(int64(1)))
	cases = append(cases, struct {
		name string
		want delta.Strategy
		got  delta.Strategy
	}{"count", delta.StrategyRing, mc.Strategy()})
	mm, _ := materializeTpl(t, semiring.MinPlus{}, "path7", pathRows(0.0))
	cases = append(cases, struct {
		name string
		want delta.Strategy
		got  delta.Strategy
	}{"minplus", delta.StrategyRecompute, mm.Strategy()})
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: strategy = %v, want %v", c.name, c.got, c.want)
		}
	}
}

// maxOp is a max aggregate over non-negative floats — a valid semiring
// aggregate sharing identities with SumProduct.
type maxOp struct{}

func (maxOp) Identity() float64 { return 0 }
func (maxOp) Combine(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
func (maxOp) IsProduct() bool { return false }

// TestGeneralFAQRecompute pins that a query with per-variable operator
// overrides (general FAQ, not SS) falls back to the recompute strategy
// and still answers updates correctly.
func TestGeneralFAQRecompute(t *testing.T) {
	tpl, _ := workload.TemplateByName("path7")
	q, err := churn.BuildQuery(semiring.SumProduct{}, tpl, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < q.H.NumEdges(); e++ {
		b := relation.NewBuilder(semiring.SumProduct{}, q.H.Edge(e))
		for i := 0; i < 4; i++ {
			b.Add([]int{i, i}, float64(i+1))
		}
		q.Factors[e] = b.Build()
	}
	// Aggregate the last variable with max instead of the semiring ⊕.
	last := q.H.NumVertices() - 1
	q.VarOps = map[int]semiring.Op[float64]{last: maxOp{}}
	g, err := faq.PlanGHD(q.H, q.Free)
	if err != nil {
		t.Fatal(err)
	}
	m, err := delta.Materialize(context.Background(), q, g, delta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Strategy() != delta.StrategyRecompute {
		t.Fatalf("general FAQ strategy = %v, want recompute", m.Strategy())
	}
	if err := m.Update(context.Background(), delta.Batch[float64]{
		Edge: 6, Inserts: []delta.Tuple[float64]{{Row: []int{1, 3}, Val: 9}},
	}); err != nil {
		t.Fatal(err)
	}
	q.Factors[6] = addRow(semiring.SumProduct{}, q.Factors[6], []int{1, 3}, 9)
	want, _, err := faq.SolveGHD(nil, q, g, faq.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(semiring.SumProduct{}, answerOf(t, m), want) {
		t.Fatal("general FAQ recompute diverges from rebuild")
	}
}

func addRow[T any](s semiring.Semiring[T], r *relation.Relation[T], row []int, v T) *relation.Relation[T] {
	b := relation.NewBuilder(s, r.Schema())
	for i := 0; i < r.Len(); i++ {
		b.AddRow(r.Tuple(i), r.Value(i))
	}
	b.Add(row, v)
	return b.Build()
}

func TestBoolSupportSemantics(t *testing.T) {
	ctx := context.Background()
	m, _ := materializeTpl(t, semiring.Bool{}, "path7", pathRows(true))
	base := answerOf(t, m)
	if base.Len() == 0 {
		t.Fatal("seed answer empty; fixture broken")
	}

	// Insert the same tuple twice, delete once: support 2-1 = 1 keeps
	// the tuple alive, so the answer must be unchanged from after the
	// first insert.
	ins := delta.Batch[bool]{Edge: 0, Inserts: []delta.Tuple[bool]{{Row: []int{5, 5}, Val: true}}}
	if err := m.Update(ctx, ins); err != nil {
		t.Fatal(err)
	}
	afterOne := answerOf(t, m)
	if err := m.Update(ctx, ins); err != nil {
		t.Fatal(err)
	}
	del := delta.Batch[bool]{Edge: 0, Deletes: []delta.Tuple[bool]{{Row: []int{5, 5}, Val: true}}}
	if err := m.Update(ctx, del); err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(semiring.Bool{}, answerOf(t, m), afterOne) {
		t.Fatal("support 2-1 should equal support 1")
	}
	// Second delete drains support to 0: back to the base answer.
	if err := m.Update(ctx, del); err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(semiring.Bool{}, answerOf(t, m), base) {
		t.Fatal("support 0 should restore the pre-insert answer")
	}
	// Third delete would take support negative: typed error, handle
	// state unchanged and reusable.
	err := m.Update(ctx, del)
	if !errors.Is(err, delta.ErrNegativeSupport) {
		t.Fatalf("over-delete error = %v, want ErrNegativeSupport", err)
	}
	if !relation.Equal(semiring.Bool{}, answerOf(t, m), base) {
		t.Fatal("failed update must not change the answer")
	}
	if err := m.Update(ctx, ins); err != nil {
		t.Fatalf("handle must stay usable after a rejected update: %v", err)
	}
	if !relation.Equal(semiring.Bool{}, answerOf(t, m), afterOne) {
		t.Fatal("post-rejection insert diverges")
	}
}

func TestRecomputeLedgerSemantics(t *testing.T) {
	ctx := context.Background()
	m, _ := materializeTpl(t, semiring.MinPlus{}, "path7", pathRows(1.0))
	base := answerOf(t, m)

	// Two equal contributions for a fresh tuple; deleting one must keep
	// the tuple (idempotent min destroys multiplicity — the ledger
	// carries it).
	ins := delta.Batch[float64]{Edge: 0, Inserts: []delta.Tuple[float64]{{Row: []int{6, 6}, Val: 2}}}
	if err := m.Update(ctx, ins); err != nil {
		t.Fatal(err)
	}
	afterOne := answerOf(t, m)
	if err := m.Update(ctx, ins); err != nil {
		t.Fatal(err)
	}
	del := delta.Batch[float64]{Edge: 0, Deletes: []delta.Tuple[float64]{{Row: []int{6, 6}, Val: 2}}}
	if err := m.Update(ctx, del); err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(semiring.MinPlus{}, answerOf(t, m), afterOne) {
		t.Fatal("deleting one of two equal contributions must keep the tuple")
	}
	if err := m.Update(ctx, del); err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(semiring.MinPlus{}, answerOf(t, m), base) {
		t.Fatal("deleting the last contribution must restore the base answer")
	}
	// Deleting a contribution that was never inserted (wrong value) is
	// a typed error and leaves the handle unchanged.
	err := m.Update(ctx, delta.Batch[float64]{
		Edge: 0, Deletes: []delta.Tuple[float64]{{Row: []int{0, 0}, Val: 99}},
	})
	if !errors.Is(err, delta.ErrNoSuchTuple) {
		t.Fatalf("unlisted delete error = %v, want ErrNoSuchTuple", err)
	}
	if !relation.Equal(semiring.MinPlus{}, answerOf(t, m), base) {
		t.Fatal("failed update must not change the answer")
	}
	st := m.Stats()
	if st.Recomputes == 0 || st.Updates == 0 {
		t.Fatalf("stats = %+v, want nonzero updates and recomputes", st)
	}
}

// TestUpdateAtomicity pins all-or-nothing multi-batch updates: a later
// invalid batch must roll back the whole call.
func TestUpdateAtomicity(t *testing.T) {
	ctx := context.Background()
	m, _ := materializeTpl(t, semiring.MinPlus{}, "path7", pathRows(1.0))
	base := answerOf(t, m)
	err := m.Update(ctx,
		delta.Batch[float64]{Edge: 0, Inserts: []delta.Tuple[float64]{{Row: []int{7, 7}, Val: 3}}},
		delta.Batch[float64]{Edge: 3, Deletes: []delta.Tuple[float64]{{Row: []int{7, 7}, Val: 123}}},
	)
	if !errors.Is(err, delta.ErrNoSuchTuple) {
		t.Fatalf("err = %v, want ErrNoSuchTuple", err)
	}
	if !relation.Equal(semiring.MinPlus{}, answerOf(t, m), base) {
		t.Fatal("partial multi-batch update leaked into the handle")
	}
	if st := m.Stats(); st.Updates != 0 {
		t.Fatalf("failed update counted: %+v", st)
	}
}

func TestMultiBatchUpdate(t *testing.T) {
	ctx := context.Background()
	s := semiring.Count{}
	m, q := materializeTpl(t, s, "tri-pendant", map[int][]delta.Tuple[int64]{
		0: {{Row: []int{0, 0}, Val: 1}, {Row: []int{1, 1}, Val: 2}},
		1: {{Row: []int{0, 0}, Val: 1}, {Row: []int{1, 1}, Val: 1}},
		2: {{Row: []int{0, 0}, Val: 1}, {Row: []int{1, 1}, Val: 3}},
		3: {{Row: []int{0, 2}, Val: 1}, {Row: []int{1, 3}, Val: 1}},
	})
	if err := m.Update(ctx,
		delta.Batch[int64]{Edge: 0, Inserts: []delta.Tuple[int64]{{Row: []int{2, 2}, Val: 5}}},
		delta.Batch[int64]{Edge: 3, Deletes: []delta.Tuple[int64]{{Row: []int{0, 2}, Val: 1}}},
		delta.Batch[int64]{Edge: 1, Inserts: []delta.Tuple[int64]{{Row: []int{2, 2}, Val: 1}}},
	); err != nil {
		t.Fatal(err)
	}
	q.Factors[0] = addRow(s, q.Factors[0], []int{2, 2}, 5)
	q.Factors[3] = addRow(s, q.Factors[3], []int{0, 2}, -1)
	q.Factors[1] = addRow(s, q.Factors[1], []int{2, 2}, 1)
	g, err := faq.PlanGHD(q.H, q.Free)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := faq.SolveGHD(nil, q, g, faq.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(s, answerOf(t, m), want) {
		t.Fatal("multi-batch update on the fat-root template diverges from rebuild")
	}
}

func TestValidationErrors(t *testing.T) {
	ctx := context.Background()
	m, _ := materializeTpl(t, semiring.Count{}, "path7", pathRows(int64(1)))
	base := answerOf(t, m)
	cases := []delta.Batch[int64]{
		{Edge: 99, Inserts: []delta.Tuple[int64]{{Row: []int{0, 0}, Val: 1}}},
		{Edge: -1, Inserts: []delta.Tuple[int64]{{Row: []int{0, 0}, Val: 1}}},
		{Edge: 0, Inserts: []delta.Tuple[int64]{{Row: []int{0}, Val: 1}}},       // arity
		{Edge: 0, Inserts: []delta.Tuple[int64]{{Row: []int{0, 800}, Val: 1}}},  // domain
		{Edge: 0, Deletes: []delta.Tuple[int64]{{Row: []int{-3, 0}, Val: 1}}},   // negative coordinate
		{Edge: 0, Inserts: []delta.Tuple[int64]{{Row: []int{0, 0, 0}, Val: 1}}}, // arity high
	}
	for i, b := range cases {
		if err := m.Update(ctx, b); err == nil {
			t.Errorf("case %d: invalid batch accepted", i)
		}
	}
	if !relation.Equal(semiring.Count{}, answerOf(t, m), base) {
		t.Fatal("rejected batches changed the answer")
	}
	if st := m.Stats(); st.Updates != 0 {
		t.Fatalf("rejected batches counted as updates: %+v", st)
	}
}

func TestClosedHandle(t *testing.T) {
	ctx := context.Background()
	m, _ := materializeTpl(t, semiring.Count{}, "path7", pathRows(int64(1)))
	m.Close()
	m.Close() // idempotent
	if _, err := m.Answer(); !errors.Is(err, delta.ErrClosed) {
		t.Fatalf("Answer on closed = %v, want ErrClosed", err)
	}
	if _, err := m.Factor(0); !errors.Is(err, delta.ErrClosed) {
		t.Fatalf("Factor on closed = %v, want ErrClosed", err)
	}
	err := m.Update(ctx, delta.Batch[int64]{Edge: 0, Inserts: []delta.Tuple[int64]{{Row: []int{0, 0}, Val: 1}}})
	if !errors.Is(err, delta.ErrClosed) {
		t.Fatalf("Update on closed = %v, want ErrClosed", err)
	}
}

func TestFactorAccessor(t *testing.T) {
	ctx := context.Background()
	m, _ := materializeTpl(t, semiring.Count{}, "path7", pathRows(int64(1)))
	if err := m.Update(ctx, delta.Batch[int64]{Edge: 2, Inserts: []delta.Tuple[int64]{{Row: []int{7, 7}, Val: 4}}}); err != nil {
		t.Fatal(err)
	}
	f, err := m.Factor(2)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := relation.LookupRow(f, []int32{7, 7})
	if !ok || got != 4 {
		t.Fatalf("Factor(2) lookup = %d,%v want 4,true", got, ok)
	}
	if _, err := m.Factor(42); err == nil {
		t.Fatal("Factor out of range must error")
	}
}

// TestFreeOutsideRoot pins the typed planning error: materializing a
// query whose free variables escape the chosen root bag must wrap
// faq.ErrFreeOutsideRoot.
func TestFreeOutsideRoot(t *testing.T) {
	tpl, _ := workload.TemplateByName("path7")
	q, err := churn.BuildQuery(semiring.Count{}, tpl, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := faq.PlanGHD(q.H, q.Free)
	if err != nil {
		t.Fatal(err)
	}
	// Re-point the free set at the far end of the path; the GHD was
	// rooted for the original free variable.
	q.Free = []int{q.H.NumVertices() - 1}
	if _, err := delta.Materialize(context.Background(), q, g, delta.Options{}); !errors.Is(err, faq.ErrFreeOutsideRoot) {
		t.Fatalf("err = %v, want ErrFreeOutsideRoot", err)
	}
}
