package delta

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/faq"
	"repro/internal/fault"
	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/semiring"
)

// chaosModes are the four injected behaviors, each armed to fire once
// so the handle both experiences the fault and stays sweepable after.
var chaosModes = []fault.Config{
	{Mode: fault.ModeError, Once: true},
	{Mode: fault.ModePanic, Once: true},
	{Mode: fault.ModeDelay, Once: true},
	{Mode: fault.ModeCancel, Once: true},
}

// typedChaosError reports whether err is an allowed faulted-update
// outcome: the injected error or a context cancellation.
func typedChaosError(err error) bool {
	return errors.Is(err, fault.ErrInjected) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// chaosQuery builds a fresh 4-edge path query with diagonal factors.
func chaosQuery[T any](s semiring.Semiring[T], one T) *faq.Query[T] {
	hb := hypergraph.NewBuilder()
	hb.Edge("v0", "v1")
	hb.Edge("v1", "v2")
	hb.Edge("v2", "v3")
	hb.Edge("v3", "v4")
	h := hb.Build()
	q := &faq.Query[T]{S: s, H: h, Free: []int{0}, DomSize: 8,
		Factors: make([]*relation.Relation[T], h.NumEdges())}
	for e := 0; e < h.NumEdges(); e++ {
		b := relation.NewBuilder(s, h.Edge(e))
		for i := 0; i < 5; i++ {
			b.Add([]int{i, i}, one)
		}
		q.Factors[e] = b.Build()
	}
	return q
}

// updateBounded runs one Update under a hang watchdog, converting an
// injected panic into its typed value.
func updateBounded[T any](t *testing.T, m *Materialized[T], b Batch[T]) (err error, panicked *fault.InjectedPanic) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() {
			if r := recover(); r != nil {
				ip, ok := r.(*fault.InjectedPanic)
				if !ok {
					panic(r)
				}
				panicked = ip
			}
		}()
		err = m.Update(context.Background(), b)
	}()
	select {
	case <-done:
		return err, panicked
	case <-time.After(60 * time.Second):
		t.Fatal("update hung under injected fault")
		return nil, nil
	}
}

// chaosCase sweeps delta.apply for one strategy: the faulted update
// either fails typed (and rolls back completely) or succeeds with a
// bit-identical answer; either way the handle keeps serving afterward.
func chaosCase[T any](t *testing.T, s semiring.Semiring[T], one, x, y T, wantStrategy Strategy) {
	for _, w := range []int{1, 2, 8} {
		pool := exec.New(w)
		for _, cfg := range chaosModes {
			w, cfg := w, cfg
			t.Run(fmt.Sprintf("w%d/%s", w, cfg.Mode), func(t *testing.T) {
				prev := exec.SetWorkers(w)
				defer exec.SetWorkers(prev)
				ref := chaosQuery(s, one)
				g, err := faq.PlanGHD(ref.H, ref.Free)
				if err != nil {
					t.Fatal(err)
				}
				solveRef := func() *relation.Relation[T] {
					ans, _, err := faq.SolveGHD(nil, ref, g, faq.SolveOptions{})
					if err != nil {
						t.Fatal(err)
					}
					return ans
				}
				refAdd := func(e int, row []int, v T) {
					b := relation.NewBuilder(s, ref.H.Edge(e))
					f := ref.Factors[e]
					for i := 0; i < f.Len(); i++ {
						b.AddRow(f.Tuple(i), f.Value(i))
					}
					b.Add(row, v)
					ref.Factors[e] = b.Build()
				}

				m, err := Materialize(context.Background(), ref, g, Options{Pool: pool})
				if err != nil {
					t.Fatal(err)
				}
				defer m.Close()
				if m.Strategy() != wantStrategy {
					t.Fatalf("strategy = %v, want %v", m.Strategy(), wantStrategy)
				}
				base := solveRef()
				if got, _ := m.Answer(); !relation.Equal(s, got, base) {
					t.Fatal("pre-fault answer diverges")
				}

				fault.Enable("delta.apply", cfg)
				defer fault.Reset()
				ins := Batch[T]{Edge: 1, Inserts: []Tuple[T]{{Row: []int{6, 6}, Val: x}}}
				uerr, panicked := updateBounded(t, m, ins)
				site, _ := fault.Lookup("delta.apply")
				if site.Fired() == 0 {
					t.Fatal("delta.apply never fired — this case tested nothing")
				}
				want := base
				switch {
				case panicked != nil:
					// Typed panic: state must have rolled back.
				case uerr != nil:
					if !typedChaosError(uerr) {
						t.Fatalf("untyped error under %s: %v", cfg.Mode, uerr)
					}
				default:
					refAdd(1, []int{6, 6}, x)
					want = solveRef()
				}
				got, err := m.Answer()
				if err != nil {
					t.Fatalf("Answer after fault: %v", err)
				}
				if !relation.Equal(s, got, want) {
					t.Fatalf("fault under %s corrupted the materialized answer", cfg.Mode)
				}

				// Containment: the handle applies clean updates after
				// the fault is disarmed.
				fault.Reset()
				if err := m.Update(context.Background(), Batch[T]{Edge: 2, Inserts: []Tuple[T]{{Row: []int{6, 6}, Val: y}}}); err != nil {
					t.Fatalf("handle unusable after fault: %v", err)
				}
				refAdd(2, []int{6, 6}, y)
				if got, _ := m.Answer(); !relation.Equal(s, got, solveRef()) {
					t.Fatal("post-fault update diverges")
				}
			})
		}
	}
}

// TestChaosDeltaApply is the resilience sweep for the incremental
// maintenance failpoint: delta.apply fired in every mode at 1/2/8
// workers, across all three maintenance strategies (the support
// strategy delegates the hit to its Count lift, so the Bool case pins
// that path too).
func TestChaosDeltaApply(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	t.Run("ring", func(t *testing.T) {
		chaosCase[int64](t, semiring.Count{}, 1, 2, 3, StrategyRing)
	})
	t.Run("recompute", func(t *testing.T) {
		chaosCase[float64](t, semiring.MinPlus{}, 1, 2, 3, StrategyRecompute)
	})
	t.Run("support", func(t *testing.T) {
		chaosCase[bool](t, semiring.Bool{}, true, true, true, StrategySupport)
	})
}
