// Package delta implements incremental maintenance of FAQ answers over
// a bound GHD plan: a Materialized handle retains every node's message
// relation from one bottom-up pass and re-answers insert/delete tuple
// batches against base relations by propagating semiring deltas up only
// the affected root path — O(affected path) instead of O(full pass)
// (ROADMAP open item 3).
//
// # Delta rules per semiring
//
// The pass is ⊕-linear for FAQ-SS queries: Join distributes over ⊕ in
// each argument and EliminateVar with the semiring ⊕ is a group sum, so
// a factor change Δ propagates as
//
//	Δmsg(v) = Agg_v(Join(Δ, <unchanged siblings>))
//	msg'(v) = msg(v) ⊕ Δmsg(v)   (relation.PatchAdd: MergeAdd with a
//	         copy-on-write value patch when Δ only moves annotations
//	         of already-listed tuples)
//
// Point deltas probe the retained relations through per-site cached
// hash indexes (relation.HashIndex) instead of rebuilding a hash side
// per hop, so a steady-state one-tuple update costs O(path · (log n +
// fanout)) probe work plus the values copies — see BENCH_incremental.
//
// provided deletions can be expressed as ⊕-inverses:
//
//	Count       delete (t,v) ⇒ ⊕ (t,-v)   (ℤ is a ring)
//	SumProduct  delete (t,v) ⇒ ⊕ (t,-v)   (ℝ is a ring; float ⊕ is
//	            re-associated, so answers are tolerance-equal, and a
//	            cancellation that is exact in ℝ may leave a residue row)
//	F2          delete (t,v) ⇒ ⊕ (t,v)    (XOR is self-inverse)
//	Bool        support-counted: the handle maintains a Count twin of
//	            the query (true ⇒ 1 derivation) and answers count > 0.
//	            Deleting below support 0 is ErrNegativeSupport; support
//	            beyond 2^63-1 derivations per answer tuple overflows.
//
// MinPlus and MaxTimes have idempotent ⊕ (min/max destroy information,
// no inverse exists), and general FAQs (per-variable aggregate
// overrides) are not ⊕-linear; both fall back to a documented per-node
// recompute: the handle keeps a per-edge contribution ledger (a
// multiset, so deleting one of two equal contributions keeps the
// other), rebuilds the touched factor, and re-runs the full node task
// for just the nodes on the edge's root path — still O(path), but
// O(node) work per node instead of O(|Δ|). These updates are counted
// separately (Stats.Recomputes, surfaced as delta_fallbacks by the
// service layer).
//
// Updates are atomic: state is staged and committed only after every
// batch applied, so an error (including an injected fault at the
// delta.apply failpoint) leaves the handle unchanged and reusable.
// Handles serialize Update/Answer with a mutex; the relation kernels
// underneath still partition across the process worker pool, and per
// the exec contract worker counts never change answers.
package delta

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/exec"
	"repro/internal/faq"
	"repro/internal/fault"
	"repro/internal/ghd"
	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/semiring"
)

// applySite is the chaos-injection point of every Update, hit after
// validation and before any state is staged — an injected fault must
// leave the handle unchanged.
var applySite = fault.Register("delta.apply")

// Typed errors of the maintenance path.
var (
	// ErrClosed reports an Update or Answer on a closed handle.
	ErrClosed = errors.New("delta: materialized handle is closed")
	// ErrNegativeSupport reports a Bool delete exceeding the tuple's
	// inserted support (the support count would go negative).
	ErrNegativeSupport = errors.New("delta: delete exceeds the tuple's inserted support")
	// ErrNoSuchTuple reports a recompute-ledger delete whose (tuple,
	// value) contribution is not listed.
	ErrNoSuchTuple = errors.New("delta: delete of an unlisted contribution")
)

// Strategy identifies how a handle maintains its state.
type Strategy string

const (
	// StrategyRing propagates exact ⊕-deltas (Count, SumProduct, F2).
	StrategyRing Strategy = "ring"
	// StrategySupport lifts Bool to a support-counting Count twin.
	StrategySupport Strategy = "support"
	// StrategyRecompute re-runs the node task along the affected path
	// (MinPlus, MaxTimes, general FAQs — idempotent or non-linear ⊕).
	StrategyRecompute Strategy = "recompute"
)

// Tuple is one tuple update: Row in the factor's schema column order
// (the order relation.Relation.Tuple uses), Val its annotation.
type Tuple[T any] struct {
	Row []int
	Val T
}

// Batch groups the inserts and deletes of one Update against one base
// relation (hyperedge index of the query's hypergraph).
type Batch[T any] struct {
	Edge    int
	Inserts []Tuple[T]
	Deletes []Tuple[T]
}

// Options configures Materialize.
type Options struct {
	// Pool schedules the initial bottom-up pass; nil uses exec.Default().
	Pool *exec.Pool
}

// Stats counts a handle's maintenance activity.
type Stats struct {
	// Updates is the number of successfully applied Update calls.
	Updates int64
	// Recomputes counts the Updates served by the per-node recompute
	// fallback instead of delta propagation.
	Recomputes int64
}

// Materialized is an incrementally maintained FAQ answer: the query's
// base relations, every GHD node's message relation, and the machinery
// to fold tuple deltas into them. Construct with Materialize; safe for
// concurrent use.
type Materialized[T any] struct {
	mu     sync.Mutex
	closed bool

	s       semiring.Semiring[T]
	q       *faq.Query[T] // owned clone; Factors tracks applied updates
	g       *ghd.GHD
	ch      [][]int
	free    map[int]bool
	edgesAt [][]int // node -> designated hyperedges, ascending
	pool    *exec.Pool

	nodeRel []*relation.Relation[T] // per node: join of its designated factors
	msgs    []*relation.Relation[T] // per node: its bottom-up message

	strategy    Strategy
	neg         func(T) T            // ⊕-inverse (ring strategies)
	nonNegative bool                 // reject negative annotations (Bool support twin)
	ledgers     []*ledger[T]         // per-edge contribution multisets (recompute)
	lift        *Materialized[int64] // the Count twin (support strategy)
	boolAnswer  *relation.Relation[T]

	// jidx caches hash-join build sides per propagation site (node ×
	// incoming child × probed sibling), so point deltas probe retained
	// state in O(|Δ| · fanout) instead of re-hashing an O(n) relation
	// every hop. Entries self-invalidate when a merge rewrites the
	// underlying row buffer (relation.IndexValidFor); memory is O(n)
	// per indexed site, the price of a standing view.
	jidx map[[3]int32]*relation.HashIndex

	updates    int64
	recomputes int64
}

// strategyOf selects the maintenance strategy: ⊕-deltas need an
// FAQ-SS query (per-variable aggregate overrides are not ⊕-linear)
// over a semiring with an additive inverse.
func strategyOf[T any](q *faq.Query[T]) Strategy {
	if !q.IsSS() {
		return StrategyRecompute
	}
	switch any(q.S).(type) {
	case semiring.Count, semiring.SumProduct, semiring.F2:
		return StrategyRing
	case semiring.Bool:
		return StrategySupport
	}
	return StrategyRecompute
}

// negOf returns the semiring's ⊕-inverse for ring strategies.
func negOf[T any](s semiring.Semiring[T]) func(T) T {
	switch any(s).(type) {
	case semiring.Count:
		f := func(v int64) int64 { return -v }
		return any(f).(func(T) T)
	case semiring.SumProduct:
		f := func(v float64) float64 { return -v }
		return any(f).(func(T) T)
	case semiring.F2:
		return func(v T) T { return v } // XOR is self-inverse
	}
	return nil
}

// Materialize runs one bottom-up pass of q over the bound decomposition
// g (mirroring faq.SolveGHD node for node, so the retained messages are
// bit-identical to a from-scratch pass for exact semirings) and returns
// the maintenance handle. The paper's free-variable restriction applies
// exactly as in SolveGHD: F ⊆ the root bag, else ErrFreeOutsideRoot.
// The handle clones the factor list; the caller's query is not retained.
func Materialize[T any](ctx context.Context, q *faq.Query[T], g *ghd.GHD, opts Options) (*Materialized[T], error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	rootBag := g.Bags[g.Root]
	for _, v := range q.Free {
		if !hypergraph.ContainsSorted(rootBag, v) {
			return nil, fmt.Errorf("delta: free variable %d outside root bag %v: %w", v, rootBag, faq.ErrFreeOutsideRoot)
		}
	}
	qc := *q
	qc.Factors = append([]*relation.Relation[T](nil), q.Factors...)
	m := &Materialized[T]{
		s:        q.S,
		q:        &qc,
		g:        g,
		ch:       g.Children(),
		free:     make(map[int]bool, len(q.Free)),
		edgesAt:  make([][]int, g.NumNodes()),
		pool:     opts.Pool,
		strategy: strategyOf(q),
		jidx:     make(map[[3]int32]*relation.HashIndex),
	}
	for _, v := range q.Free {
		m.free[v] = true
	}
	for e, v := range g.NodeOf {
		m.edgesAt[v] = append(m.edgesAt[v], e)
	}
	switch m.strategy {
	case StrategySupport:
		lifted := liftBoolQuery(&qc)
		lift, err := Materialize(ctx, lifted, g, opts)
		if err != nil {
			return nil, err
		}
		lift.nonNegative = true
		m.lift = lift
		return m, nil
	case StrategyRing:
		m.neg = negOf(q.S)
	case StrategyRecompute:
		m.ledgers = make([]*ledger[T], len(qc.Factors))
		for e, f := range qc.Factors {
			m.ledgers[e] = ledgerOf(f)
		}
	}
	if err := m.solveAll(ctx); err != nil {
		return nil, err
	}
	return m, nil
}

// liftBoolQuery builds the Count twin of a Bool query: same hypergraph,
// free variables, and domain; every listed (true) tuple becomes one
// derivation (count 1).
func liftBoolQuery[T any](q *faq.Query[T]) *faq.Query[int64] {
	cs := semiring.Count{}
	factors := make([]*relation.Relation[int64], len(q.Factors))
	for e, f := range q.Factors {
		b := relation.NewBuilderHint(cs, f.Schema(), f.Len())
		for i := 0; i < f.Len(); i++ {
			b.AddRow(f.Tuple(i), 1)
		}
		factors[e] = b.Build()
	}
	return &faq.Query[int64]{S: cs, H: q.H, Factors: factors, Free: q.Free, DomSize: q.DomSize}
}

// solveAll runs the bottom-up pass retaining every node's message —
// the same per-node work as faq.SolveGHD (joins in fixed child order,
// innermost-first aggregation), so the retained state is exactly what a
// from-scratch pass produces.
func (m *Materialized[T]) solveAll(ctx context.Context) error {
	nodeRel := make([]*relation.Relation[T], m.g.NumNodes())
	for e, v := range m.g.NodeOf {
		if nodeRel[v] == nil {
			nodeRel[v] = m.q.Factors[e]
		} else {
			nodeRel[v] = relation.Join(m.s, nodeRel[v], m.q.Factors[e])
		}
	}
	msgs := make([]*relation.Relation[T], m.g.NumNodes())
	task := func(v int) error {
		cur := nodeRel[v]
		if cur == nil {
			cur = relation.Unit(m.s, m.s.One())
		}
		for _, c := range m.ch[v] {
			cur = relation.Join(m.s, cur, msgs[c])
		}
		cur, err := m.aggregateNode(v, cur)
		if err != nil {
			return err
		}
		msgs[v] = cur
		return nil
	}
	pool := m.pool
	if pool == nil {
		pool = exec.Default()
	}
	if err := pool.ForestCtx(ctx, m.g.Parent, task); err != nil {
		return err
	}
	m.nodeRel = nodeRel
	m.msgs = msgs
	return nil
}

// aggregateNode applies node v's aggregation step: keep free variables
// and (below the root) the parent bag, eliminate everything else
// innermost-first — identical to the SolveGHD task.
func (m *Materialized[T]) aggregateNode(v int, cur *relation.Relation[T]) (*relation.Relation[T], error) {
	var parentBag []int
	atRoot := v == m.g.Root
	if !atRoot {
		parentBag = m.g.Bags[m.g.Parent[v]]
	}
	return faq.AggregateOut(m.q, cur, func(x int) bool {
		return m.free[x] || (!atRoot && hypergraph.ContainsSorted(parentBag, x))
	})
}

// Strategy reports how the handle maintains its state.
func (m *Materialized[T]) Strategy() Strategy {
	if m.strategy == StrategySupport {
		return StrategySupport
	}
	return m.strategy
}

// Stats returns the handle's maintenance counters.
func (m *Materialized[T]) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Updates: m.updates, Recomputes: m.recomputes}
}

// Answer returns the maintained answer relation — the root message,
// exactly what faq.SolveGHD would return for the current base
// relations. The relation is immutable; callers may retain it across
// updates.
func (m *Materialized[T]) Answer() (*relation.Relation[T], error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if m.strategy == StrategySupport {
		if m.boolAnswer == nil {
			ans, err := m.lift.Answer()
			if err != nil {
				return nil, err
			}
			m.boolAnswer = oneOf(m.s, ans)
		}
		return m.boolAnswer, nil
	}
	return m.msgs[m.g.Root], nil
}

// Factor returns the handle's current view of base relation e (the
// factors the maintained answer corresponds to).
func (m *Materialized[T]) Factor(e int) (*relation.Relation[T], error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if e < 0 || e >= len(m.q.Factors) {
		return nil, fmt.Errorf("delta: factor %d out of range [0,%d)", e, len(m.q.Factors))
	}
	if m.strategy == StrategySupport {
		f, err := m.lift.Factor(e)
		if err != nil {
			return nil, err
		}
		return oneOf(m.s, f), nil
	}
	return m.q.Factors[e], nil
}

// oneOf maps every listed tuple of c onto the semiring's 1 — the
// Bool view of a non-negative support count (count > 0 ⇔ true).
func oneOf[T any, U any](s semiring.Semiring[T], c *relation.Relation[U]) *relation.Relation[T] {
	b := relation.NewBuilderHint(s, c.Schema(), c.Len())
	one := s.One()
	for i := 0; i < c.Len(); i++ {
		b.AddRow(c.Tuple(i), one)
	}
	return b.Build()
}

// Close releases the handle's retained state. Further Update/Answer
// calls return ErrClosed. Idempotent.
func (m *Materialized[T]) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	m.nodeRel, m.msgs, m.ledgers, m.boolAnswer, m.jidx = nil, nil, nil, nil, nil
	if m.lift != nil {
		m.lift.Close()
	}
}

// Update applies insert/delete batches and re-answers by propagating
// deltas up the affected root paths (or recomputing the path's node
// tasks, per the strategy). The whole call is atomic: on any error —
// validation, context cancellation, an injected delta.apply fault, a
// support underflow — the handle is unchanged and remains usable.
func (m *Materialized[T]) Update(ctx context.Context, batches ...Batch[T]) error {
	if ctx == nil {
		ctx = context.Background()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if m.strategy == StrategySupport {
		lb, err := liftBatches(batches)
		if err != nil {
			return err
		}
		if err := m.lift.Update(ctx, lb...); err != nil {
			return err
		}
		m.boolAnswer = nil
		m.updates++
		metricUpdates.Inc()
		return nil
	}
	if err := m.validateBatches(batches); err != nil {
		return err
	}
	if err := applySite.Hit(ctx); err != nil {
		return err
	}
	var err error
	if m.strategy == StrategyRecompute {
		err = m.applyRecompute(ctx, batches)
	} else {
		err = m.applyRing(ctx, batches)
	}
	if err != nil {
		return err
	}
	m.updates++
	metricUpdates.Inc()
	if m.strategy == StrategyRecompute {
		m.recomputes++
		metricRecomputes.Inc()
	}
	return nil
}

// liftBatches converts Bool batches onto the Count twin: a true tuple
// is one derivation; false (zero-annotated) tuples are no-ops.
func liftBatches[T any](batches []Batch[T]) ([]Batch[int64], error) {
	out := make([]Batch[int64], len(batches))
	for i, b := range batches {
		lb := Batch[int64]{Edge: b.Edge}
		for _, t := range b.Inserts {
			if tv, ok := any(t.Val).(bool); !ok {
				return nil, fmt.Errorf("delta: support strategy on non-bool value %v", t.Val)
			} else if tv {
				lb.Inserts = append(lb.Inserts, Tuple[int64]{Row: t.Row, Val: 1})
			}
		}
		for _, t := range b.Deletes {
			if tv, ok := any(t.Val).(bool); !ok {
				return nil, fmt.Errorf("delta: support strategy on non-bool value %v", t.Val)
			} else if tv {
				lb.Deletes = append(lb.Deletes, Tuple[int64]{Row: t.Row, Val: 1})
			}
		}
		out[i] = lb
	}
	return out, nil
}

// validateBatches rejects malformed updates before any state changes:
// edge indices in range, rows of the factor's arity, values within the
// domain.
func (m *Materialized[T]) validateBatches(batches []Batch[T]) error {
	for bi, b := range batches {
		if b.Edge < 0 || b.Edge >= m.q.H.NumEdges() {
			return fmt.Errorf("delta: batch %d edge %d out of range [0,%d)", bi, b.Edge, m.q.H.NumEdges())
		}
		arity := len(m.q.H.Edge(b.Edge))
		check := func(kind string, ts []Tuple[T]) error {
			for ti, t := range ts {
				if len(t.Row) != arity {
					return fmt.Errorf("delta: batch %d %s %d arity %d != edge arity %d", bi, kind, ti, len(t.Row), arity)
				}
				for _, x := range t.Row {
					if x < 0 || x >= m.q.DomSize {
						return fmt.Errorf("delta: batch %d %s %d value %d outside domain [0,%d)", bi, kind, ti, x, m.q.DomSize)
					}
				}
			}
			return nil
		}
		if err := check("insert", b.Inserts); err != nil {
			return err
		}
		if err := check("delete", b.Deletes); err != nil {
			return err
		}
	}
	return nil
}

// deltaFactor folds one batch into a single delta relation over the
// edge schema: inserts with their values, deletes with the ⊕-inverse.
// The builder ⊕-merges duplicates and drops exact zeros, so an
// insert/delete pair of the same tuple cancels before any propagation.
func (m *Materialized[T]) deltaFactor(b Batch[T]) *relation.Relation[T] {
	schema := m.q.H.Edge(b.Edge)
	bld := relation.NewBuilderHint(m.s, schema, len(b.Inserts)+len(b.Deletes))
	for _, t := range b.Inserts {
		bld.Add(t.Row, t.Val)
	}
	for _, t := range b.Deletes {
		bld.Add(t.Row, m.neg(t.Val))
	}
	return bld.Build()
}

// patchMax bounds the delta sizes eligible for relation.PatchAdd's
// copy-on-write value-patch fast path; larger deltas take the plain
// linear merge, whose cost they already amortize.
const patchMax = 128

// applyRing stages and commits one ring-strategy update: per batch,
// fold the delta into the base factor with PatchAdd (MergeAdd with a
// point fast path), then walk the
// edge's node path to the root propagating Δmsg — joining the delta
// first (it is small, so every intermediate stays small), then the
// node's own relation and the unchanged sibling messages, aggregating
// with the node's own keep set, and ⊕-merging into the retained
// message. Propagation stops early when a Δmsg cancels to empty.
func (m *Materialized[T]) applyRing(ctx context.Context, batches []Batch[T]) error {
	factors := append([]*relation.Relation[T](nil), m.q.Factors...)
	nodeRel := append([]*relation.Relation[T](nil), m.nodeRel...)
	msgs := append([]*relation.Relation[T](nil), m.msgs...)
	for _, b := range batches {
		if err := ctx.Err(); err != nil {
			return err
		}
		d := m.deltaFactor(b)
		if d.Len() == 0 {
			continue
		}
		nf, err := relation.PatchAdd(m.s, factors[b.Edge], d, patchMax)
		if err != nil {
			return err
		}
		if m.nonNegative {
			for i := 0; i < d.Len(); i++ {
				if v, ok := relation.LookupRow(nf, d.Tuple(i)); ok && isNegative(m.s, v) {
					return fmt.Errorf("delta: tuple %v on edge %d: %w", d.Tuple(i), b.Edge, ErrNegativeSupport)
				}
			}
		}
		factors[b.Edge] = nf
		u := m.g.NodeOf[b.Edge]
		// Node-local delta: join the factor delta with the node's other
		// designated factors (unchanged in this batch, so the product's
		// delta is Join(Δ, siblings) by distributivity). Multi-factor
		// nodes exist only at a fat core root (cyclic shapes).
		dn := d
		if len(m.edgesAt[u]) > 1 {
			for _, e := range m.edgesAt[u] {
				if e != b.Edge {
					dn = relation.Join(m.s, dn, factors[e])
				}
			}
			var cur *relation.Relation[T]
			for _, e := range m.edgesAt[u] {
				if cur == nil {
					cur = factors[e]
				} else {
					cur = relation.Join(m.s, cur, factors[e])
				}
			}
			nodeRel[u] = cur
		} else {
			nodeRel[u] = nf
		}
		// Walk the root path. from == -1 means the delta replaces the
		// node's own factor slot; otherwise it replaces child `from`'s
		// message and the node's relation joins in.
		dcur, v, from := dn, u, -1
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			cur := dcur
			if from != -1 && nodeRel[v] != nil {
				cur = m.joinAt([3]int32{0, int32(v), int32(from)}, cur, nodeRel[v])
			}
			for _, c := range m.ch[v] {
				if c != from {
					cur = m.joinAt([3]int32{1, int32(v), int32(c)}, cur, msgs[c])
				}
			}
			dm, err := m.aggregateNode(v, cur)
			if err != nil {
				return err
			}
			nm, err := relation.PatchAdd(m.s, msgs[v], dm, patchMax)
			if err != nil {
				return err
			}
			msgs[v] = nm
			if dm.Len() == 0 || v == m.g.Root {
				break
			}
			dcur, from, v = dm, v, m.g.Parent[v]
		}
	}
	m.q.Factors, m.nodeRel, m.msgs = factors, nodeRel, msgs
	return nil
}

// joinAt joins a small delta against one retained relation through the
// site's cached hash index, building (or rebuilding) the index when the
// retained side's row buffer changed since the last update. Large
// deltas amortize a one-shot Join on their own and skip the cache.
func (m *Materialized[T]) joinAt(site [3]int32, small, big *relation.Relation[T]) *relation.Relation[T] {
	if small.Len() > patchMax {
		return relation.Join(m.s, small, big)
	}
	shared := hypergraph.IntersectSorted(small.Schema(), big.Schema())
	ix := m.jidx[site]
	if !relation.IndexValidFor(ix, big, shared) {
		ix = relation.BuildHashIndex(big, shared)
		if ix == nil {
			return relation.Join(m.s, small, big)
		}
		m.jidx[site] = ix
	}
	return relation.JoinIndexed(m.s, small, big, ix)
}

// isNegative reports a negative annotation (only meaningful for the
// Count support twin).
func isNegative[T any](s semiring.Semiring[T], v T) bool {
	if c, ok := any(v).(int64); ok {
		return c < 0
	}
	return false
}

// applyRecompute stages and commits one recompute-strategy update: per
// batch, fold the inserts/deletes into the edge's contribution ledger
// (copy-on-write), rebuild the factor by ⊕-folding each tuple's
// contributions, and re-run the full node task for every node on the
// edge's root path against the staged state. Sibling subtrees'
// messages depend only on their own factors and are reused untouched —
// the documented O(path × node) fallback for idempotent ⊕.
func (m *Materialized[T]) applyRecompute(ctx context.Context, batches []Batch[T]) error {
	factors := append([]*relation.Relation[T](nil), m.q.Factors...)
	nodeRel := append([]*relation.Relation[T](nil), m.nodeRel...)
	msgs := append([]*relation.Relation[T](nil), m.msgs...)
	ledgers := append([]*ledger[T](nil), m.ledgers...)
	staged := make([]bool, len(ledgers))
	for _, b := range batches {
		if err := ctx.Err(); err != nil {
			return err
		}
		lg := ledgers[b.Edge]
		if !staged[b.Edge] {
			lg = lg.clone()
			ledgers[b.Edge] = lg
			staged[b.Edge] = true
		}
		for _, t := range b.Inserts {
			lg.insert(t.Row, t.Val)
		}
		for _, t := range b.Deletes {
			if !lg.remove(m.s, t.Row, t.Val) {
				return fmt.Errorf("delta: tuple %v value %s on edge %d: %w", t.Row, m.s.Format(t.Val), b.Edge, ErrNoSuchTuple)
			}
		}
		factors[b.Edge] = lg.build(m.s, m.q.H.Edge(b.Edge))
		u := m.g.NodeOf[b.Edge]
		var cur *relation.Relation[T]
		for _, e := range m.edgesAt[u] {
			if cur == nil {
				cur = factors[e]
			} else {
				cur = relation.Join(m.s, cur, factors[e])
			}
		}
		nodeRel[u] = cur
		for v := u; ; v = m.g.Parent[v] {
			if err := ctx.Err(); err != nil {
				return err
			}
			cur := nodeRel[v]
			if cur == nil {
				cur = relation.Unit(m.s, m.s.One())
			}
			for _, c := range m.ch[v] {
				cur = relation.Join(m.s, cur, msgs[c])
			}
			nm, err := m.aggregateNode(v, cur)
			if err != nil {
				return err
			}
			msgs[v] = nm
			if v == m.g.Root {
				break
			}
		}
	}
	m.q.Factors, m.nodeRel, m.msgs, m.ledgers = factors, nodeRel, msgs, ledgers
	return nil
}
