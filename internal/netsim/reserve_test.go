package netsim

import (
	"testing"

	"repro/internal/topology"
)

func TestReserveBasic(t *testing.T) {
	n := mustNet(t, topology.Line(2), 8)
	arrive, err := n.Reserve(0, 1, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if arrive != 1 {
		t.Errorf("arrive = %d, want 1", arrive)
	}
	// The round is full: a second full-width reservation shifts.
	arrive, err = n.Reserve(0, 1, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if arrive != 2 {
		t.Errorf("second arrive = %d, want 2", arrive)
	}
}

func TestReserveSharesRound(t *testing.T) {
	n := mustNet(t, topology.Line(2), 8)
	a1, _ := n.Reserve(0, 1, 0, 3)
	a2, _ := n.Reserve(1, 0, 0, 3)
	a3, _ := n.Reserve(0, 1, 0, 3)
	if a1 != 1 || a2 != 1 {
		t.Errorf("two 3-bit messages should share round 0: %d, %d", a1, a2)
	}
	if a3 != 2 {
		t.Errorf("third 3-bit message must shift (9 > 8 bits): arrive %d, want 2", a3)
	}
}

func TestReserveErrors(t *testing.T) {
	n := mustNet(t, topology.Line(3), 8)
	if _, err := n.Reserve(0, 2, 0, 4); err == nil {
		t.Error("expected error for non-adjacent reserve")
	}
	if _, err := n.Reserve(0, 1, -1, 4); err == nil {
		t.Error("expected error for negative round")
	}
	if _, err := n.Reserve(0, 1, 0, 0); err == nil {
		t.Error("expected error for zero bits")
	}
	if _, err := n.Reserve(0, 1, 0, 9); err == nil {
		t.Error("expected error for over-capacity reserve")
	}
}

func TestReserveRespectsEarliest(t *testing.T) {
	n := mustNet(t, topology.Line(2), 8)
	arrive, err := n.Reserve(0, 1, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if arrive != 6 {
		t.Errorf("arrive = %d, want 6 (booked at round 5)", arrive)
	}
	if n.Rounds() != 6 {
		t.Errorf("rounds = %d, want 6", n.Rounds())
	}
}
