// Package netsim simulates the synchronous distributed network of
// Model 2.1: in each round, at most B = O(r·log₂ D) bits cross each edge
// of the topology, and a protocol's cost is the index of the last round
// in which any bit moves.
//
// Protocols are expressed as compositions of causal scheduling primitives
// over a round-indexed edge-capacity ledger: a hop can forward data no
// earlier than the round after it received it, and reservations never
// exceed an edge's per-round capacity. Round counts reported by the
// simulator are therefore exactly the model's round complexity for the
// schedule at hand. Data transformation (semijoins, aggregation) happens
// in protocol code; the simulator accounts for movement.
package netsim

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/topology"
)

// Chaos failpoints on the message ledger. The three sites are evaluated
// per message (Reserve / SendBits / RoutePath call), in this order:
//
//	netsim.drop  — the message is lost: the call returns a typed
//	               *MessageLostError (errors.Is ErrMessageLost) and
//	               books nothing, the shape a real lossy channel shows.
//	netsim.delay — the message leaves Arg rounds late (default 1): the
//	               earliest send round is pushed back, so answers stay
//	               bit-identical while Report round counts grow.
//	netsim.dup   — the message is booked twice (duplicate delivery):
//	               the reported delivery round is the original copy's,
//	               so answers stay bit-identical while ledger bits grow.
var (
	dropSite     = fault.Register("netsim.drop")
	dupSite      = fault.Register("netsim.dup")
	msgDelaySite = fault.Register("netsim.delay")
)

// ErrMessageLost matches every drop-site injection (errors.Is).
var ErrMessageLost = errors.New("netsim: message lost")

// MessageLostError reports an injected message loss between two nodes.
type MessageLostError struct {
	From, To int
}

func (e *MessageLostError) Error() string {
	return fmt.Sprintf("netsim: message from %d to %d lost (injected)", e.From, e.To)
}

// Is makes errors.Is(err, ErrMessageLost) succeed.
func (e *MessageLostError) Is(target error) bool { return target == ErrMessageLost }

// messageFaults evaluates the per-message failpoints for a message from
// u to v first sendable at round start. It returns the (possibly
// delayed) start round and whether the message must be booked twice.
func (n *Network) messageFaults(u, v, start int) (int, bool, error) {
	if _, ok := dropSite.Fire(); ok {
		return 0, false, &MessageLostError{From: u, To: v}
	}
	if cfg, ok := msgDelaySite.Fire(); ok {
		d := cfg.Arg
		if d <= 0 {
			d = 1
		}
		start += d
	}
	_, dup := dupSite.Fire()
	return start, dup, nil
}

// Network wraps a topology with a per-(edge, round) bit ledger.
type Network struct {
	g *topology.Graph
	b int // bits per edge per round

	used      [][]int // used[edge][round] = bits reserved
	lastRound int     // highest round index reserved, -1 when idle
	totalBits int64
}

// New returns a simulator over g where each edge carries bitsPerRound
// bits per round (the paper's B = O(r·log₂ D)).
func New(g *topology.Graph, bitsPerRound int) (*Network, error) {
	if bitsPerRound <= 0 {
		return nil, fmt.Errorf("netsim: bits per round must be positive, got %d", bitsPerRound)
	}
	return &Network{
		g:         g,
		b:         bitsPerRound,
		used:      make([][]int, g.M()),
		lastRound: -1,
	}, nil
}

// Graph returns the underlying topology.
func (n *Network) Graph() *topology.Graph { return n.g }

// BitsPerRound returns the edge capacity B.
func (n *Network) BitsPerRound() int { return n.b }

// Rounds returns the number of rounds the schedule uses so far (the
// paper's round complexity): lastOccupiedRound + 1.
func (n *Network) Rounds() int { return n.lastRound + 1 }

// TotalBits returns the total bits moved (for communication-volume
// comparisons with the total-communication literature, Section 7).
func (n *Network) TotalBits() int64 { return n.totalBits }

// Reset clears the ledger.
func (n *Network) Reset() {
	n.used = make([][]int, n.g.M())
	n.lastRound = -1
	n.totalBits = 0
}

// reserve books `bits` (≤ B) on edge e at the earliest round ≥ r with
// spare capacity, returning the booked round.
func (n *Network) reserve(e, r, bits int) int {
	for {
		for len(n.used[e]) <= r {
			n.used[e] = append(n.used[e], 0)
		}
		if n.used[e][r]+bits <= n.b {
			n.used[e][r] += bits
			if r > n.lastRound {
				n.lastRound = r
			}
			n.totalBits += int64(bits)
			return r
		}
		r++
	}
}

// Reserve books a message of the given size (≤ B) on the channel between
// adjacent nodes u and v, at the earliest round ≥ earliest with spare
// capacity, and returns the round at which the receiver holds it (booked
// round + 1). It is the low-level primitive behind the pipelined keyed
// schedules of the protocol package.
func (n *Network) Reserve(u, v, earliest, bits int) (int, error) {
	if earliest < 0 || bits <= 0 {
		return 0, fmt.Errorf("netsim: invalid reserve (round %d, %d bits)", earliest, bits)
	}
	if bits > n.b {
		return 0, fmt.Errorf("netsim: reserve of %d bits exceeds capacity %d", bits, n.b)
	}
	e, err := n.edgeOf(u, v)
	if err != nil {
		return 0, err
	}
	earliest, dup, err := n.messageFaults(u, v, earliest)
	if err != nil {
		return 0, err
	}
	r := n.reserve(e, earliest, bits) + 1
	if dup {
		n.reserve(e, earliest, bits)
	}
	return r, nil
}

// edgeOf validates adjacency and returns the edge id.
func (n *Network) edgeOf(u, v int) (int, error) {
	id, ok := n.g.EdgeID(u, v)
	if !ok {
		return 0, fmt.Errorf("netsim: no channel between %d and %d", u, v)
	}
	return id, nil
}

// SendBits transmits a message of the given size from u to its neighbor
// v, starting no earlier than round start. Large messages split into
// ⌈bits/B⌉ sequential per-round reservations. It returns the first round
// at which v fully holds the message (protocols chain the next step from
// that round).
func (n *Network) SendBits(u, v, start, bits int) (int, error) {
	if start < 0 || bits < 0 {
		return 0, fmt.Errorf("netsim: negative start/bits")
	}
	e, err := n.edgeOf(u, v)
	if err != nil {
		return 0, err
	}
	if bits == 0 {
		return start, nil
	}
	start, dup, err := n.messageFaults(u, v, start)
	if err != nil {
		return 0, err
	}
	send := func() int {
		r := start
		remaining := bits
		for remaining > 0 {
			chunk := remaining
			if chunk > n.b {
				chunk = n.b
			}
			r = n.reserve(e, r, chunk) + 1
			remaining -= chunk
		}
		return r
	}
	r := send()
	if dup {
		send()
	}
	return r, nil
}

// RoutePath pipelines a message of the given size along a path
// (consecutive vertices must be adjacent): chunk c may leave hop i only
// in a round after it arrived there. For an uncontended path of length L
// this completes in ⌈bits/B⌉ + L − 1 rounds. Returns the delivery round.
func (n *Network) RoutePath(path []int, start, bits int) (int, error) {
	if len(path) == 0 {
		return 0, fmt.Errorf("netsim: empty path")
	}
	if start < 0 || bits < 0 {
		return 0, fmt.Errorf("netsim: negative start/bits")
	}
	if len(path) == 1 || bits == 0 {
		return start, nil
	}
	edges := make([]int, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		e, err := n.edgeOf(path[i], path[i+1])
		if err != nil {
			return 0, err
		}
		edges[i] = e
	}
	start, dup, err := n.messageFaults(path[0], path[len(path)-1], start)
	if err != nil {
		return 0, err
	}
	route := func() int {
		finish := start
		remaining := bits
		ready := start // round at which the next chunk is available at hop 0
		for remaining > 0 {
			chunk := remaining
			if chunk > n.b {
				chunk = n.b
			}
			r := ready
			for _, e := range edges {
				r = n.reserve(e, r, chunk) + 1
			}
			if r > finish {
				finish = r
			}
			ready++ // source releases one chunk per round at the earliest
			remaining -= chunk
		}
		return finish
	}
	finish := route()
	if dup {
		route()
	}
	return finish, nil
}

// Tree is a rooted edge subset of the topology used by broadcast and
// converge-cast.
type Tree struct {
	Root  int
	Edges []int
}

// children orients the tree away from the root, returning child lists
// and the parent map.
func (n *Network) children(t *Tree) (map[int][]int, map[int]int, error) {
	in := make(map[int]bool, len(t.Edges))
	for _, e := range t.Edges {
		in[e] = true
	}
	ch := make(map[int][]int)
	parent := map[int]int{t.Root: -1}
	queue := []int{t.Root}
	seen := map[int]bool{t.Root: true}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range n.g.Adj(u) {
			id, _ := n.g.EdgeID(u, v)
			if !in[id] || seen[v] {
				continue
			}
			seen[v] = true
			parent[v] = u
			ch[u] = append(ch[u], v)
			queue = append(queue, v)
		}
	}
	reached := 0
	for range parent {
		reached++
	}
	// Count tree edges reached; a cycle or disconnected edge set is a
	// malformed tree.
	if reached != len(t.Edges)+1 {
		return nil, nil, fmt.Errorf("netsim: edge set is not a tree rooted at %d", t.Root)
	}
	return ch, parent, nil
}

// BroadcastTree pushes a message of the given size from the root to
// every tree node (Step 3 of Algorithm 1). Returns the round at which
// the last node holds it.
func (n *Network) BroadcastTree(t *Tree, start, bits int) (int, error) {
	ch, _, err := n.children(t)
	if err != nil {
		return 0, err
	}
	finish := start
	var walk func(u, ready int) error
	walk = func(u, ready int) error {
		for _, v := range ch[u] {
			done, err := n.SendBits(u, v, ready, bits)
			if err != nil {
				return err
			}
			if done > finish {
				finish = done
			}
			if err := walk(v, done); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.Root, start); err != nil {
		return 0, err
	}
	return finish, nil
}

// ConvergeTree aggregates fixed-size messages bottom-up: every non-root
// node sends `bits` to its parent once it has received from all its
// children (aggregation keeps message size constant, as in the bit-wise
// AND of Theorem 3.11). Returns the round at which the root has heard
// from all children.
func (n *Network) ConvergeTree(t *Tree, start, bits int) (int, error) {
	ch, _, err := n.children(t)
	if err != nil {
		return 0, err
	}
	var walk func(u int) (int, error) // round at which u is ready to send up
	walk = func(u int) (int, error) {
		ready := start
		for _, v := range ch[u] {
			childReady, err := walk(v)
			if err != nil {
				return 0, err
			}
			done, err := n.SendBits(v, u, childReady, bits)
			if err != nil {
				return 0, err
			}
			if done > ready {
				ready = done
			}
		}
		return ready, nil
	}
	return walk(t.Root)
}

// StreamItems pipelines a sequence of fixed-size items along a path with
// per-node filtering — the semijoin chains of Examples 2.1 and 2.2. Item
// i leaves the source no earlier than round start+i (one item per round,
// matching the one-tuple-per-round normalization); each intermediate
// node forwards an item the round after receiving it, iff
// keep(node, item) — the source's own filter applies before sending.
// It returns, for each item, whether it reached the end of the path, and
// the overall completion round.
func (n *Network) StreamItems(path []int, start, items, itemBits int, keep func(node, item int) bool) ([]bool, int, error) {
	if len(path) == 0 {
		return nil, 0, fmt.Errorf("netsim: empty path")
	}
	if itemBits > n.b {
		return nil, 0, fmt.Errorf("netsim: item size %d exceeds edge capacity %d", itemBits, n.b)
	}
	delivered := make([]bool, items)
	finish := start
	for i := 0; i < items; i++ {
		r := start + i
		alive := true
		for h := 0; h+1 < len(path); h++ {
			if keep != nil && !keep(path[h], i) {
				alive = false
				break
			}
			e, err := n.edgeOf(path[h], path[h+1])
			if err != nil {
				return nil, 0, err
			}
			r = n.reserve(e, r, itemBits) + 1
		}
		if alive && len(path) > 1 {
			if keep != nil && !keep(path[len(path)-1], i) {
				alive = false
			}
		}
		delivered[i] = alive
		if alive && r > finish {
			finish = r
		}
	}
	return delivered, finish, nil
}
