package netsim

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
)

func mustNet(t *testing.T, g *topology.Graph, b int) *Network {
	t.Helper()
	n, err := New(g, b)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewRejectsBadCapacity(t *testing.T) {
	if _, err := New(topology.Line(2), 0); err == nil {
		t.Error("expected error for zero capacity")
	}
}

func TestSendBitsSingleRound(t *testing.T) {
	n := mustNet(t, topology.Line(2), 8)
	done, err := n.SendBits(0, 1, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if done != 1 {
		t.Errorf("done = %d, want 1", done)
	}
	if n.Rounds() != 1 {
		t.Errorf("rounds = %d, want 1", n.Rounds())
	}
	if n.TotalBits() != 8 {
		t.Errorf("total bits = %d, want 8", n.TotalBits())
	}
}

func TestSendBitsSplitsLargeMessage(t *testing.T) {
	n := mustNet(t, topology.Line(2), 8)
	done, err := n.SendBits(0, 1, 0, 20) // 3 rounds: 8+8+4
	if err != nil {
		t.Fatal(err)
	}
	if done != 3 {
		t.Errorf("done = %d, want 3", done)
	}
}

func TestSendBitsSharesCapacity(t *testing.T) {
	n := mustNet(t, topology.Line(2), 8)
	d1, _ := n.SendBits(0, 1, 0, 4)
	d2, _ := n.SendBits(0, 1, 0, 4)
	if d1 != 1 || d2 != 1 {
		t.Errorf("two half-capacity messages should share round 0: %d, %d", d1, d2)
	}
	d3, _ := n.SendBits(0, 1, 0, 4)
	if d3 != 2 {
		t.Errorf("third message must spill to round 1: done = %d", d3)
	}
}

func TestSendBitsNonAdjacent(t *testing.T) {
	n := mustNet(t, topology.Line(3), 8)
	if _, err := n.SendBits(0, 2, 0, 4); err == nil {
		t.Error("expected error for non-adjacent send")
	}
}

func TestRoutePathPipelines(t *testing.T) {
	// 10 chunks over 3 hops: 10 + 3 - 1 = 12 rounds.
	n := mustNet(t, topology.Line(4), 8)
	done, err := n.RoutePath([]int{0, 1, 2, 3}, 0, 80)
	if err != nil {
		t.Fatal(err)
	}
	if done != 12 {
		t.Errorf("pipelined delivery = %d, want 12", done)
	}
}

func TestRoutePathContention(t *testing.T) {
	// Two full-capacity streams over the same edge serialize.
	n := mustNet(t, topology.Line(2), 8)
	d1, _ := n.RoutePath([]int{0, 1}, 0, 32)
	d2, _ := n.RoutePath([]int{0, 1}, 0, 32)
	if d1 != 4 {
		t.Errorf("first stream = %d, want 4", d1)
	}
	if d2 != 8 {
		t.Errorf("second stream = %d, want 8 (serialized)", d2)
	}
}

func TestRoutePathDisjointEdgesOverlap(t *testing.T) {
	// Streams on disjoint edges run simultaneously.
	g := topology.Line(3)
	n := mustNet(t, g, 8)
	d1, _ := n.RoutePath([]int{0, 1}, 0, 32)
	d2, _ := n.RoutePath([]int{2, 1}, 0, 32)
	if d1 != 4 || d2 != 4 {
		t.Errorf("parallel streams = %d, %d, want 4, 4", d1, d2)
	}
	if n.Rounds() != 4 {
		t.Errorf("rounds = %d, want 4", n.Rounds())
	}
}

func TestBroadcastTreeStar(t *testing.T) {
	g := topology.Star(5)
	n := mustNet(t, g, 8)
	tree := &Tree{Root: 0, Edges: []int{0, 1, 2, 3}}
	done, err := n.BroadcastTree(tree, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if done != 1 {
		t.Errorf("star broadcast = %d, want 1 (parallel edges)", done)
	}
}

func TestBroadcastTreeLine(t *testing.T) {
	g := topology.Line(4)
	n := mustNet(t, g, 8)
	tree := &Tree{Root: 0, Edges: []int{0, 1, 2}}
	done, err := n.BroadcastTree(tree, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	// 2 rounds per hop, 3 hops, sequential store-and-forward: 6.
	if done != 6 {
		t.Errorf("line broadcast = %d, want 6", done)
	}
}

func TestConvergeTreeLine(t *testing.T) {
	g := topology.Line(4)
	n := mustNet(t, g, 8)
	tree := &Tree{Root: 0, Edges: []int{0, 1, 2}}
	done, err := n.ConvergeTree(tree, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if done != 3 {
		t.Errorf("line converge = %d, want 3", done)
	}
}

func TestConvergeTreeStar(t *testing.T) {
	g := topology.Star(6)
	n := mustNet(t, g, 8)
	tree := &Tree{Root: 0, Edges: []int{0, 1, 2, 3, 4}}
	done, err := n.ConvergeTree(tree, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if done != 1 {
		t.Errorf("star converge = %d, want 1", done)
	}
}

func TestTreeValidation(t *testing.T) {
	g := topology.Ring(4)
	n := mustNet(t, g, 8)
	// All 4 ring edges form a cycle, not a tree.
	bad := &Tree{Root: 0, Edges: []int{0, 1, 2, 3}}
	if _, err := n.BroadcastTree(bad, 0, 4); err == nil {
		t.Error("expected error for cyclic edge set")
	}
	// Disconnected edge set.
	g2 := topology.Line(4)
	n2 := mustNet(t, g2, 8)
	e02, _ := g2.EdgeID(0, 1)
	e23, _ := g2.EdgeID(2, 3)
	bad2 := &Tree{Root: 0, Edges: []int{e02, e23}}
	if _, err := n2.BroadcastTree(bad2, 0, 4); err == nil {
		t.Error("expected error for disconnected edge set")
	}
}

func TestStreamItemsExample21Shape(t *testing.T) {
	// Example 2.1: N values streamed along the 4-player line G1 finish
	// in N + 2 rounds (N items pipelined over 3 edges: N-1+3).
	g := topology.Line(4)
	n := mustNet(t, g, 8)
	N := 32
	delivered, finish, err := n.StreamItems([]int{0, 1, 2, 3}, 0, N, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if finish != N+2 {
		t.Errorf("finish = %d, want N+2 = %d", finish, N+2)
	}
	for i, ok := range delivered {
		if !ok {
			t.Fatalf("item %d dropped without a filter", i)
		}
	}
}

func TestStreamItemsFiltering(t *testing.T) {
	g := topology.Line(3)
	n := mustNet(t, g, 8)
	// Node 1 drops odd items; node 2 (the sink) drops item 0.
	keep := func(node, item int) bool {
		if node == 1 {
			return item%2 == 0
		}
		if node == 2 {
			return item != 0
		}
		return true
	}
	delivered, _, err := n.StreamItems([]int{0, 1, 2}, 0, 6, 8, keep)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, false, true, false, true, false}
	for i := range want {
		if delivered[i] != want[i] {
			t.Errorf("delivered[%d] = %v, want %v", i, delivered[i], want[i])
		}
	}
}

func TestStreamItemsTooLarge(t *testing.T) {
	n := mustNet(t, topology.Line(2), 4)
	if _, _, err := n.StreamItems([]int{0, 1}, 0, 3, 8, nil); err == nil {
		t.Error("expected error for item larger than capacity")
	}
}

func TestReset(t *testing.T) {
	n := mustNet(t, topology.Line(2), 8)
	if _, err := n.SendBits(0, 1, 0, 8); err != nil {
		t.Fatal(err)
	}
	n.Reset()
	if n.Rounds() != 0 || n.TotalBits() != 0 {
		t.Error("Reset did not clear the ledger")
	}
}

// TestCapacityNeverExceeded drives random primitives and then audits the
// ledger: no (edge, round) cell may exceed B — the defining constraint
// of Model 2.1.
func TestCapacityNeverExceeded(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		g := topology.RandomConnected(4+r.Intn(6), r.Intn(8), r)
		b := 1 + r.Intn(16)
		n := mustNet(t, g, b)
		for op := 0; op < 30; op++ {
			u := r.Intn(g.N())
			nbrs := g.Adj(u)
			v := nbrs[r.Intn(len(nbrs))]
			switch r.Intn(3) {
			case 0:
				if _, err := n.SendBits(u, v, r.Intn(5), 1+r.Intn(3*b)); err != nil {
					t.Fatal(err)
				}
			case 1:
				path := g.ShortestPath(u, (u+1)%g.N(), nil)
				if len(path) > 1 {
					if _, err := n.RoutePath(path, r.Intn(5), 1+r.Intn(4*b)); err != nil {
						t.Fatal(err)
					}
				}
			case 2:
				items := 1 + r.Intn(6)
				path := g.ShortestPath(u, (u+2)%g.N(), nil)
				if len(path) > 1 {
					if _, _, err := n.StreamItems(path, r.Intn(5), items, 1+r.Intn(b), nil); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		for e := range n.used {
			for round, bits := range n.used[e] {
				if bits > b {
					t.Fatalf("edge %d round %d uses %d bits > capacity %d", e, round, bits, b)
				}
			}
		}
	}
}
