// Package pgm models discrete probabilistic graphical models as FAQ-SS
// queries over the sum-product semiring (ℝ≥0, +, ×) — the paper's second
// headline application (Section 1): computing a variable or factor
// marginal is the FAQ with F = {v} or F = e, and the partition function
// is the fully-bound query.
package pgm

import (
	"fmt"
	"math/rand"

	"repro/internal/faq"
	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/semiring"
)

var sp = semiring.SumProduct{}

// Model is a factor graph: hyperedge i of H is the scope of potential
// Factors[i]. Potentials are strictly positive on listed tuples; the
// listing representation omits zeros exactly as the paper's R_e does.
type Model struct {
	H       *hypergraph.Hypergraph
	Factors []*relation.Relation[float64]
	DomSize int
}

// Validate checks the model's queries will validate.
func (m *Model) Validate() error {
	q := m.query(nil)
	return q.Validate()
}

func (m *Model) query(free []int) *faq.Query[float64] {
	return &faq.Query[float64]{
		S:       sp,
		H:       m.H,
		Factors: m.Factors,
		Free:    free,
		DomSize: m.DomSize,
	}
}

// MarginalQuery returns the FAQ computing the (unnormalized) marginal of
// the given free variables.
func (m *Model) MarginalQuery(free []int) *faq.Query[float64] { return m.query(free) }

// Partition computes the partition function Z (all variables bound).
func (m *Model) Partition() (float64, error) {
	res, err := faq.Solve(m.query(nil))
	if err != nil {
		return 0, err
	}
	return relation.ScalarValue(sp, res)
}

// VariableMarginal computes the unnormalized marginal P̃(x_v).
func (m *Model) VariableMarginal(v int) (*relation.Relation[float64], error) {
	if v < 0 || v >= m.H.NumVertices() {
		return nil, fmt.Errorf("pgm: variable %d out of range", v)
	}
	return faq.Solve(m.query([]int{v}))
}

// FactorMarginal computes the unnormalized marginal over factor e's
// scope — the F = e case the paper highlights.
func (m *Model) FactorMarginal(e int) (*relation.Relation[float64], error) {
	if e < 0 || e >= m.H.NumEdges() {
		return nil, fmt.Errorf("pgm: factor %d out of range", e)
	}
	return faq.Solve(m.query(m.H.Edge(e)))
}

// Normalize divides a marginal by Z, returning probabilities.
func (m *Model) Normalize(marg *relation.Relation[float64]) (map[string]float64, error) {
	z, err := m.Partition()
	if err != nil {
		return nil, err
	}
	if z <= 0 {
		return nil, fmt.Errorf("pgm: partition function %g not positive", z)
	}
	out := make(map[string]float64, marg.Len())
	for i := 0; i < marg.Len(); i++ {
		key := fmt.Sprint(marg.Tuple(i))
		out[key] = marg.Value(i) / z
	}
	return out, nil
}

// randomPotential fills a dense positive potential on a scope.
func randomPotential(schema []int, dom int, r *rand.Rand) *relation.Relation[float64] {
	b := relation.NewBuilder[float64](sp, schema)
	tuple := make([]int, len(schema))
	var fill func(i int)
	fill = func(i int) {
		if i == len(schema) {
			b.Add(tuple, 0.25+r.Float64())
			return
		}
		for v := 0; v < dom; v++ {
			tuple[i] = v
			fill(i + 1)
		}
	}
	fill(0)
	return b.Build()
}

// NewChain builds a pairwise chain model x₀—x₁—...—x_{n-1} with random
// positive potentials.
func NewChain(n, dom int, r *rand.Rand) *Model {
	h := hypergraph.PathGraph(n)
	m := &Model{H: h, DomSize: dom}
	for i := 0; i < h.NumEdges(); i++ {
		m.Factors = append(m.Factors, randomPotential(h.Edge(i), dom, r))
	}
	return m
}

// NewTree builds a random pairwise tree model.
func NewTree(n, dom int, r *rand.Rand) *Model {
	h := hypergraph.New(n)
	for v := 1; v < n; v++ {
		h.AddEdge(r.Intn(v), v)
	}
	m := &Model{H: h, DomSize: dom}
	for i := 0; i < h.NumEdges(); i++ {
		m.Factors = append(m.Factors, randomPotential(h.Edge(i), dom, r))
	}
	return m
}

// NewGrid builds a rows×cols pairwise grid model — a cyclic hypergraph
// exercising the core phase of the distributed protocol.
func NewGrid(rows, cols, dom int, r *rand.Rand) *Model {
	h := hypergraph.New(rows * cols)
	at := func(i, j int) int { return i*cols + j }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				h.AddEdge(at(i, j), at(i, j+1))
			}
			if i+1 < rows {
				h.AddEdge(at(i, j), at(i+1, j))
			}
		}
	}
	m := &Model{H: h, DomSize: dom}
	for i := 0; i < h.NumEdges(); i++ {
		m.Factors = append(m.Factors, randomPotential(h.Edge(i), dom, r))
	}
	return m
}
