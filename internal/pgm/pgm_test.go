package pgm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/faq"
	"repro/internal/relation"
)

func TestChainPartitionAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	m := NewChain(5, 3, r)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	z, err := m.Partition()
	if err != nil {
		t.Fatal(err)
	}
	res, err := faq.BruteForce(m.MarginalQuery(nil))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := relation.ScalarValue(sp, res)
	if math.Abs(z-want) > 1e-9*want {
		t.Errorf("Z = %v, brute force %v", z, want)
	}
	if z <= 0 {
		t.Errorf("Z = %v not positive", z)
	}
}

func TestVariableMarginalSumsToZ(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	m := NewTree(6, 3, r)
	z, err := m.Partition()
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		marg, err := m.VariableMarginal(v)
		if err != nil {
			t.Fatalf("marginal(%d): %v", v, err)
		}
		total := 0.0
		for i := 0; i < marg.Len(); i++ {
			total += marg.Value(i)
		}
		if math.Abs(total-z) > 1e-9*z {
			t.Errorf("Σ marginal(x%d) = %v != Z = %v", v, total, z)
		}
	}
}

func TestFactorMarginalMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	m := NewChain(4, 3, r)
	for e := 0; e < m.H.NumEdges(); e++ {
		got, err := m.FactorMarginal(e)
		if err != nil {
			t.Fatal(err)
		}
		want, err := faq.BruteForce(m.MarginalQuery(m.H.Edge(e)))
		if err != nil {
			t.Fatal(err)
		}
		if !relation.Equal(sp, got, want) {
			t.Errorf("factor marginal %d mismatch", e)
		}
	}
}

func TestNormalizeIsDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	m := NewChain(4, 3, r)
	marg, err := m.VariableMarginal(2)
	if err != nil {
		t.Fatal(err)
	}
	probs, err := m.Normalize(marg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Errorf("probability %v outside [0,1]", p)
		}
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("marginal sums to %v, want 1", total)
	}
}

func TestGridModelIsCyclic(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	m := NewGrid(2, 3, 2, r)
	// 2x3 grid: 7 edges, cyclic — exercises the core phase when run
	// distributed; centrally it must still match brute force.
	z, err := m.Partition()
	if err != nil {
		t.Fatal(err)
	}
	res, err := faq.BruteForce(m.MarginalQuery(nil))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := relation.ScalarValue(sp, res)
	if math.Abs(z-want) > 1e-9*want {
		t.Errorf("grid Z = %v, brute force %v", z, want)
	}
}

func TestMarginalErrors(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	m := NewChain(3, 2, r)
	if _, err := m.VariableMarginal(-1); err == nil {
		t.Error("expected error for bad variable")
	}
	if _, err := m.FactorMarginal(99); err == nil {
		t.Error("expected error for bad factor")
	}
}
