package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the exact exposition output: family name
// ordering, label-value ordering within a family, histogram
// bucket/_sum/_count shape, and HELP/label escaping.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("zz_last_total", "sorted last by name")
	c.Add(3)
	v := r.NewCounterVec("aa_requests_total", "requests with a\nnewline and back\\slash", "semiring", "op")
	v.With("count", "solve").Add(7)
	v.With("bool", "batch").Inc()
	v.With("bool", `quo"te`).Inc()
	g := r.NewGauge("mid_gauge", "a gauge")
	g.Set(-4)
	h := r.NewHistogram("lat_ns", "latency", []int64{10, 100})
	h.Observe(5)   // bucket le=10
	h.Observe(50)  // bucket le=100
	h.Observe(500) // +Inf
	h.Observe(7)   // bucket le=10

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_requests_total requests with a\nnewline and back\\slash
# TYPE aa_requests_total counter
aa_requests_total{semiring="bool",op="batch"} 1
aa_requests_total{semiring="bool",op="quo\"te"} 1
aa_requests_total{semiring="count",op="solve"} 7
# HELP lat_ns latency
# TYPE lat_ns histogram
lat_ns_bucket{le="10"} 2
lat_ns_bucket{le="100"} 3
lat_ns_bucket{le="+Inf"} 4
lat_ns_sum 562
lat_ns_count 4
# HELP mid_gauge a gauge
# TYPE mid_gauge gauge
mid_gauge -4
# HELP zz_last_total sorted last by name
# TYPE zz_last_total counter
zz_last_total 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("c_total", "help")
	b := r.NewCounter("c_total", "help")
	a.Inc()
	b.Inc()
	if a.Value() != 2 || b.Value() != 2 {
		t.Fatalf("re-registration must return the same cell: %d %d", a.Value(), b.Value())
	}
	v1 := r.NewCounterVec("v_total", "help", "k")
	v2 := r.NewCounterVec("v_total", "help", "k")
	v1.With("x").Add(5)
	if got := v2.With("x").Value(); got != 5 {
		t.Fatalf("With must be idempotent per label set, got %d", got)
	}
}

func TestRegistrationMismatchPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"kind", func(r *Registry) { r.NewCounter("m", "h"); r.NewGauge("m", "h") }},
		{"help", func(r *Registry) { r.NewCounter("m", "h"); r.NewCounter("m", "other") }},
		{"labels", func(r *Registry) { r.NewCounterVec("m", "h", "a"); r.NewCounterVec("m", "h", "b") }},
		{"buckets", func(r *Registry) {
			r.NewHistogram("m", "h", []int64{1, 2})
			r.NewHistogram("m", "h", []int64{1, 3})
		}},
		{"empty help", func(r *Registry) { r.NewCounter("m", "") }},
		{"bad name", func(r *Registry) { r.NewCounter("0bad", "h") }},
		{"bad label", func(r *Registry) { r.NewCounterVec("m", "h", "le") }},
		{"unsorted buckets", func(r *Registry) { r.NewHistogram("m", "h", []int64{2, 1}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

// TestHistogramConcurrent hammers one histogram from 8 goroutines; run
// under -race this pins the lock-free sample path, and the final counts
// must balance exactly.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("hammer_ns", "hammered", []int64{8, 64, 512})
	const goroutines = 8
	const perG = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(int64((g*perG + i) % 1024))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*perG)
	}
	var bucketTotal int64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket counts %d != count %d", bucketTotal, s.Count)
	}
}

// TestSampleAllocs pins the zero-allocation contract for every sample
// primitive the exec/kernel hot paths use.
func TestSampleAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "h")
	g := r.NewGauge("g", "h")
	h := r.NewHistogram("h_ns", "h", DurationBucketsNS)
	bound := r.NewCounterVec("v_total", "h", "k").With("x")
	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Add", func() { c.Add(2) }},
		{"Counter.Inc", func() { c.Inc() }},
		{"Gauge.Set", func() { g.Set(9) }},
		{"Gauge.Add", func() { g.Add(-1) }},
		{"Histogram.Observe", func() { h.Observe(123456) }},
		{"bound child Add", func() { bound.Add(1) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f/op, want 0", tc.name, allocs)
		}
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.NewHistogram("bench_ns", "h", DurationBucketsNS)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
