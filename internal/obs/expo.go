package obs

import (
	"io"
	"strconv"
	"strings"
)

// ExpositionContentType is the Content-Type for the Prometheus text
// exposition format produced by WriteTo.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteTo writes every family in the Prometheus text exposition format:
//
//	# HELP name help
//	# TYPE name counter|gauge|histogram
//	name{label="value"} 123
//
// Families are emitted in name order and children in label-value order,
// so the output is deterministic for golden tests. Histograms emit
// cumulative `name_bucket{...,le="..."}` series (including le="+Inf"),
// `name_sum`, and `name_count`. Values are read with independent atomic
// loads: each series is monotone across scrapes, but bucket/sum pairs
// are not a consistent cut.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	for _, f := range r.sortedFamilies() {
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.kind.String())
		b.WriteByte('\n')
		for _, c := range f.sortedChildren() {
			switch f.kind {
			case histogramKind:
				writeHistogram(&b, f, c)
			default:
				b.WriteString(f.name)
				writeLabels(&b, f.labels, c.values, "", "")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatInt(c.val.Load(), 10))
				b.WriteByte('\n')
			}
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func writeHistogram(b *strings.Builder, f *family, c *child) {
	var cum, sum int64
	for i := range c.counts {
		cum += c.counts[i].Load()
		le := "+Inf"
		if i < len(f.buckets) {
			le = strconv.FormatInt(f.buckets[i], 10)
		}
		b.WriteString(f.name)
		b.WriteString("_bucket")
		writeLabels(b, f.labels, c.values, "le", le)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(cum, 10))
		b.WriteByte('\n')
	}
	sum = c.sum.Load()
	b.WriteString(f.name)
	b.WriteString("_sum")
	writeLabels(b, f.labels, c.values, "", "")
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(sum, 10))
	b.WriteByte('\n')
	b.WriteString(f.name)
	b.WriteString("_count")
	writeLabels(b, f.labels, c.values, "", "")
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(cum, 10))
	b.WriteByte('\n')
}

// writeLabels emits `{k="v",...}` in declared label order, appending
// the optional extra pair (the histogram le) last. Nothing is written
// for a label-free series without an extra pair.
func writeLabels(b *strings.Builder, names, values []string, extraName, extraVal string) {
	if len(names) == 0 && extraName == "" {
		return
	}
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// escapeHelp escapes backslash and newline per the exposition format.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes backslash, double quote, and newline.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
