package obs

import (
	"math"
	"strings"
	"testing"
)

// TestParseRoundTrip writes a populated registry and re-parses it: the
// strict parser must accept everything WriteTo emits and recover the
// same values, labels, and help text.
func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.NewCounterVec("rt_requests_total", `help with \ and "quotes"`+"\nand newline", "semiring").
		With("min-plus").Add(42)
	r.NewGauge("rt_depth", "queue depth").Set(-3)
	h := r.NewHistogram("rt_lat_ns", "latency", []int64{100, 1000})
	h.Observe(50)
	h.Observe(5000)

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	s, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("round trip rejected: %v\n%s", err, b.String())
	}
	if got := s.Families["rt_requests_total"].Help; got != `help with \ and "quotes"`+"\nand newline" {
		t.Fatalf("help round trip: %q", got)
	}
	if v, ok := s.Value("rt_requests_total", map[string]string{"semiring": "min-plus"}); !ok || v != 42 {
		t.Fatalf("counter value = %v %v", v, ok)
	}
	if v, ok := s.Value("rt_depth", nil); !ok || v != -3 {
		t.Fatalf("gauge value = %v %v", v, ok)
	}
	if v, ok := s.Value("rt_lat_ns_count", nil); !ok || v != 2 {
		t.Fatalf("hist count = %v %v", v, ok)
	}
	les, cum, ok := s.HistBuckets("rt_lat_ns", nil)
	if !ok || len(les) != 2 || len(cum) != 3 {
		t.Fatalf("HistBuckets = %v %v %v", les, cum, ok)
	}
	if cum[0] != 1 || cum[1] != 1 || cum[2] != 2 {
		t.Fatalf("cumulative counts = %v", cum)
	}
}

// TestParseStrictness feeds the parser documents that a sloppy parser
// would accept; all must be rejected.
func TestParseStrictness(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"sample before TYPE", "# HELP m h\nm 1\n"},
		{"no HELP", "# TYPE m counter\nm 1\n"},
		{"bare sample", "m 1\n"},
		{"duplicate HELP", "# HELP m h\n# TYPE m counter\nm 1\n# HELP m h\n"},
		{"duplicate TYPE", "# HELP m h\n# TYPE m counter\n# TYPE m counter\n"},
		{"unknown type", "# HELP m h\n# TYPE m summary\nm 1\n"},
		{"unknown comment", "# EOF\n"},
		{"blank line", "# HELP m h\n# TYPE m counter\n\nm 1\n"},
		{"duplicate series", "# HELP m h\n# TYPE m counter\nm 1\nm 2\n"},
		{"foreign sample", "# HELP m h\n# TYPE m counter\nother 1\n"},
		{"duplicate label", "# HELP m h\n# TYPE m counter\nm{a=\"1\",a=\"2\"} 1\n"},
		{"unterminated label", "# HELP m h\n# TYPE m counter\nm{a=\"1\" 1\n"},
		{"bad escape", "# HELP m h\n# TYPE m counter\nm{a=\"\\t\"} 1\n"},
		{"bad value", "# HELP m h\n# TYPE m counter\nm one\n"},
		{"help no type", "# HELP m h\n"},
		{"hist missing inf", "# HELP m h\n# TYPE m histogram\nm_bucket{le=\"1\"} 1\nm_sum 1\nm_count 1\n"},
		{"hist missing sum", "# HELP m h\n# TYPE m histogram\nm_bucket{le=\"+Inf\"} 1\nm_count 1\n"},
		{"hist inf vs count", "# HELP m h\n# TYPE m histogram\nm_bucket{le=\"+Inf\"} 2\nm_sum 1\nm_count 1\n"},
		{"hist decreasing", "# HELP m h\n# TYPE m histogram\nm_bucket{le=\"1\"} 5\nm_bucket{le=\"2\"} 3\nm_bucket{le=\"+Inf\"} 5\nm_sum 1\nm_count 5\n"},
		{"hist bucket no le", "# HELP m h\n# TYPE m histogram\nm_bucket 1\nm_bucket{le=\"+Inf\"} 1\nm_sum 1\nm_count 1\n"},
		{"interleaved families", "# HELP a h\n# TYPE a counter\n# HELP b h\n# TYPE b counter\na 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseText(strings.NewReader(tc.doc)); err == nil {
				t.Fatalf("accepted malformed document:\n%s", tc.doc)
			}
		})
	}
}

func TestParseAcceptsHistogramWithLabels(t *testing.T) {
	doc := "# HELP m h\n# TYPE m histogram\n" +
		"m_bucket{s=\"a\",le=\"1\"} 1\nm_bucket{s=\"a\",le=\"+Inf\"} 2\nm_sum{s=\"a\"} 3\nm_count{s=\"a\"} 2\n" +
		"m_bucket{s=\"b\",le=\"1\"} 0\nm_bucket{s=\"b\",le=\"+Inf\"} 1\nm_sum{s=\"b\"} 9\nm_count{s=\"b\"} 1\n"
	s, err := ParseText(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Value("m_count", map[string]string{"s": "b"}); !ok || v != 1 {
		t.Fatalf("labelled hist count = %v %v", v, ok)
	}
	les, cum, ok := s.HistBuckets("m", map[string]string{"s": "a"})
	if !ok || len(les) != 1 || cum[1] != 2 {
		t.Fatalf("labelled HistBuckets = %v %v %v", les, cum, ok)
	}
}

func TestQuantileFromBuckets(t *testing.T) {
	// 100 observations: 50 in (0,10], 40 in (10,100], 10 in (100,+Inf].
	les := []float64{10, 100}
	cum := []float64{50, 90, 100}
	if got := QuantileFromBuckets(les, cum, 0.5); got != 10 {
		t.Fatalf("p50 = %v, want 10 (exact bucket edge)", got)
	}
	p75 := QuantileFromBuckets(les, cum, 0.75)
	want := 10 + 90*(75.0-50.0)/40.0 // interpolated inside (10,100]
	if math.Abs(p75-want) > 1e-9 {
		t.Fatalf("p75 = %v, want %v", p75, want)
	}
	if got := QuantileFromBuckets(les, cum, 0.99); got != 100 {
		t.Fatalf("p99 in +Inf bucket should clamp to 100, got %v", got)
	}
	if got := QuantileFromBuckets(nil, nil, 0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	if got := QuantileFromBuckets(les, []float64{0, 0, 0}, 0.5); got != 0 {
		t.Fatalf("zero-count quantile = %v, want 0", got)
	}
}

func TestRuntimeCollector(t *testing.T) {
	r := NewRegistry()
	c := NewRuntimeCollector(r)
	c.Collect()
	if c.goroutines.Value() < 1 {
		t.Fatalf("goroutines gauge = %d, want >= 1", c.goroutines.Value())
	}
	if c.heapBytes.Value() <= 0 {
		t.Fatalf("heap bytes gauge = %d, want > 0", c.heapBytes.Value())
	}
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseText(strings.NewReader(b.String())); err != nil {
		t.Fatalf("runtime gauges don't round-trip: %v", err)
	}
}
