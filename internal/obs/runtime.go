package obs

import (
	"math"
	"runtime/metrics"
)

// RuntimeCollector mirrors a few runtime/metrics samples into registry
// gauges. Collect is called at scrape time (faqd's /metrics handler),
// not on a timer, so an idle process costs nothing.
type RuntimeCollector struct {
	samples    []metrics.Sample
	goroutines *Gauge
	heapBytes  *Gauge
	gcCycles   *Gauge
	gcPauseP50 *Gauge
	gcPauseP99 *Gauge
}

// NewRuntimeCollector registers the faq_go_* runtime gauges on r and
// returns a collector that refreshes them.
func NewRuntimeCollector(r *Registry) *RuntimeCollector {
	c := &RuntimeCollector{
		samples: []metrics.Sample{
			{Name: "/sched/goroutines:goroutines"},
			{Name: "/memory/classes/heap/objects:bytes"},
			{Name: "/gc/cycles/total:gc-cycles"},
			{Name: "/gc/pauses:seconds"},
		},
		goroutines: r.NewGauge("faq_go_goroutines",
			"Live goroutines, from runtime/metrics /sched/goroutines."),
		heapBytes: r.NewGauge("faq_go_heap_objects_bytes",
			"Bytes of live heap objects, from /memory/classes/heap/objects."),
		gcCycles: r.NewGauge("faq_go_gc_cycles_total",
			"Completed GC cycles since process start (monotone gauge)."),
		gcPauseP50: r.NewGauge("faq_go_gc_pause_p50_ns",
			"Median stop-the-world GC pause since process start, nanoseconds."),
		gcPauseP99: r.NewGauge("faq_go_gc_pause_p99_ns",
			"99th-percentile stop-the-world GC pause since process start, nanoseconds."),
	}
	return c
}

// Collect reads the runtime samples and updates the gauges.
func (c *RuntimeCollector) Collect() {
	metrics.Read(c.samples)
	for _, s := range c.samples {
		switch s.Name {
		case "/sched/goroutines:goroutines":
			if s.Value.Kind() == metrics.KindUint64 {
				c.goroutines.Set(clampInt64(s.Value.Uint64()))
			}
		case "/memory/classes/heap/objects:bytes":
			if s.Value.Kind() == metrics.KindUint64 {
				c.heapBytes.Set(clampInt64(s.Value.Uint64()))
			}
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() == metrics.KindUint64 {
				c.gcCycles.Set(clampInt64(s.Value.Uint64()))
			}
		case "/gc/pauses:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				c.gcPauseP50.Set(histQuantileNS(h, 0.5))
				c.gcPauseP99.Set(histQuantileNS(h, 0.99))
			}
		}
	}
}

func clampInt64(v uint64) int64 {
	if v > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(v)
}

// histQuantileNS estimates quantile q of a runtime Float64Histogram
// (seconds) in nanoseconds, using each landing bucket's upper bound.
func histQuantileNS(h *metrics.Float64Histogram, q float64) int64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= rank {
			// Bucket i spans [Buckets[i], Buckets[i+1]); report the
			// upper bound, falling back to the lower for the +Inf tail.
			upper := h.Buckets[i+1]
			if math.IsInf(upper, 1) {
				upper = h.Buckets[i]
			}
			if math.IsInf(upper, -1) || math.IsNaN(upper) || upper < 0 {
				return 0
			}
			return int64(upper * 1e9)
		}
	}
	return 0
}
