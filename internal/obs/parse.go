package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParsedSample is one series line from an exposition document.
type ParsedSample struct {
	Name   string            // full series name, e.g. "foo_bucket"
	Labels map[string]string // includes "le" for histogram buckets
	Value  float64
}

// ParsedFamily is one metric family: its HELP/TYPE metadata and every
// sample line that followed them.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string // "counter", "gauge", or "histogram"
	Samples []ParsedSample
}

// Scrape is a parsed exposition document.
type Scrape struct {
	Families map[string]*ParsedFamily
}

// ParseText parses a Prometheus text exposition document strictly. It
// accepts exactly the dialect WriteTo produces — and rejects everything
// a malformed writer could emit: samples without a preceding TYPE,
// duplicate HELP/TYPE/series, unknown comment lines, label syntax
// errors, non-contiguous families, and histograms whose cumulative
// buckets decrease, lack le="+Inf", or disagree with _count. Tests use
// it to round-trip /metrics; faqload uses it to fold server-side
// histograms into load reports.
func ParseText(r io.Reader) (*Scrape, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	s := &Scrape{Families: make(map[string]*ParsedFamily)}
	var cur *ParsedFamily
	done := make(map[string]bool) // families closed by a later HELP line
	lines := strings.Split(string(raw), "\n")
	for i, line := range lines {
		lineno := i + 1
		if line == "" {
			if i == len(lines)-1 {
				break // trailing newline
			}
			return nil, fmt.Errorf("obs: parse line %d: blank line", lineno)
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := line[len("# HELP "):]
			sp := strings.IndexByte(rest, ' ')
			if sp <= 0 {
				return nil, fmt.Errorf("obs: parse line %d: malformed HELP", lineno)
			}
			name, help := rest[:sp], unescapeHelp(rest[sp+1:])
			if s.Families[name] != nil || done[name] {
				return nil, fmt.Errorf("obs: parse line %d: duplicate HELP for %s", lineno, name)
			}
			if cur != nil {
				done[cur.Name] = true
			}
			cur = &ParsedFamily{Name: name, Help: help}
			s.Families[name] = cur
		case strings.HasPrefix(line, "# TYPE "):
			rest := line[len("# TYPE "):]
			sp := strings.IndexByte(rest, ' ')
			if sp <= 0 {
				return nil, fmt.Errorf("obs: parse line %d: malformed TYPE", lineno)
			}
			name, typ := rest[:sp], rest[sp+1:]
			if cur == nil || cur.Name != name {
				return nil, fmt.Errorf("obs: parse line %d: TYPE %s without preceding HELP", lineno, name)
			}
			if cur.Type != "" {
				return nil, fmt.Errorf("obs: parse line %d: duplicate TYPE for %s", lineno, name)
			}
			switch typ {
			case "counter", "gauge", "histogram":
				cur.Type = typ
			default:
				return nil, fmt.Errorf("obs: parse line %d: unknown type %q for %s", lineno, typ, name)
			}
		case strings.HasPrefix(line, "#"):
			return nil, fmt.Errorf("obs: parse line %d: unknown comment line", lineno)
		default:
			sample, err := parseSample(line)
			if err != nil {
				return nil, fmt.Errorf("obs: parse line %d: %v", lineno, err)
			}
			if cur == nil || cur.Type == "" {
				return nil, fmt.Errorf("obs: parse line %d: sample %s before TYPE", lineno, sample.Name)
			}
			if !sampleBelongs(cur, sample.Name) {
				return nil, fmt.Errorf("obs: parse line %d: sample %s outside family %s", lineno, sample.Name, cur.Name)
			}
			for _, prev := range cur.Samples {
				if prev.Name == sample.Name && labelsEqual(prev.Labels, sample.Labels) {
					return nil, fmt.Errorf("obs: parse line %d: duplicate series %s", lineno, sample.Name)
				}
			}
			cur.Samples = append(cur.Samples, sample)
		}
	}
	for _, f := range s.Families {
		if f.Type == "" {
			return nil, fmt.Errorf("obs: parse: family %s has HELP but no TYPE", f.Name)
		}
		if f.Type == "histogram" {
			if err := checkHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// sampleBelongs reports whether a series name is legal inside family f.
func sampleBelongs(f *ParsedFamily, series string) bool {
	if f.Type == "histogram" {
		return series == f.Name+"_bucket" || series == f.Name+"_sum" || series == f.Name+"_count"
	}
	return series == f.Name
}

// parseSample parses `name{k="v",...} value` (labels optional).
func parseSample(line string) (ParsedSample, error) {
	sample := ParsedSample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	sample.Name = line[:i]
	if !validMetricName(sample.Name) {
		return sample, fmt.Errorf("invalid series name %q", sample.Name)
	}
	if i < len(line) && line[i] == '{' {
		i++
		for {
			if i >= len(line) {
				return sample, fmt.Errorf("unterminated label set")
			}
			if line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && line[j] != '=' {
				j++
			}
			name := line[i:j]
			if name != "le" && !validLabelName(name) {
				return sample, fmt.Errorf("invalid label name %q", name)
			}
			if j+1 >= len(line) || line[j+1] != '"' {
				return sample, fmt.Errorf("label %s: expected quoted value", name)
			}
			val, rest, err := unquoteLabelValue(line[j+2:])
			if err != nil {
				return sample, fmt.Errorf("label %s: %v", name, err)
			}
			if _, dup := sample.Labels[name]; dup {
				return sample, fmt.Errorf("duplicate label %s", name)
			}
			sample.Labels[name] = val
			i = len(line) - len(rest)
			if i < len(line) && line[i] == ',' {
				i++
			} else if i >= len(line) || line[i] != '}' {
				return sample, fmt.Errorf("label %s: expected , or }", name)
			}
		}
	}
	if i >= len(line) || line[i] != ' ' {
		return sample, fmt.Errorf("expected space before value")
	}
	v, err := strconv.ParseFloat(line[i+1:], 64)
	if err != nil {
		return sample, fmt.Errorf("bad value %q", line[i+1:])
	}
	sample.Value = v
	return sample, nil
}

// unquoteLabelValue consumes an escaped label value up to its closing
// quote and returns the decoded value plus the remaining input.
func unquoteLabelValue(s string) (val, rest string, err error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

func unescapeHelp(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}

func labelsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// labelsWithoutLe copies a label set minus the bucket boundary label.
func labelsWithoutLe(labels map[string]string) map[string]string {
	out := make(map[string]string, len(labels))
	for k, v := range labels {
		if k != "le" {
			out[k] = v
		}
	}
	return out
}

// checkHistogram enforces the histogram invariants per label set:
// cumulative bucket counts nondecreasing in le, an le="+Inf" bucket
// present and equal to _count, and _sum/_count present exactly once.
func checkHistogram(f *ParsedFamily) error {
	type group struct {
		les      []float64
		cum      []float64
		inf      float64
		hasInf   bool
		count    float64
		hasCount bool
		hasSum   bool
	}
	groups := map[string]*group{}
	keyOf := func(labels map[string]string) string {
		base := labelsWithoutLe(labels)
		keys := make([]string, 0, len(base))
		for k := range base {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(base[k])
			b.WriteByte(';')
		}
		return b.String()
	}
	get := func(labels map[string]string) *group {
		k := keyOf(labels)
		g := groups[k]
		if g == nil {
			g = &group{}
			groups[k] = g
		}
		return g
	}
	for _, sm := range f.Samples {
		switch sm.Name {
		case f.Name + "_bucket":
			le, ok := sm.Labels["le"]
			if !ok {
				return fmt.Errorf("obs: histogram %s: bucket without le", f.Name)
			}
			g := get(sm.Labels)
			if le == "+Inf" {
				g.inf, g.hasInf = sm.Value, true
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("obs: histogram %s: bad le %q", f.Name, le)
			}
			g.les = append(g.les, bound)
			g.cum = append(g.cum, sm.Value)
		case f.Name + "_sum":
			get(sm.Labels).hasSum = true
		case f.Name + "_count":
			g := get(sm.Labels)
			g.count, g.hasCount = sm.Value, true
		}
	}
	for _, g := range groups {
		if !g.hasInf {
			return fmt.Errorf("obs: histogram %s: missing le=\"+Inf\" bucket", f.Name)
		}
		if !g.hasSum || !g.hasCount {
			return fmt.Errorf("obs: histogram %s: missing _sum or _count", f.Name)
		}
		if g.inf != g.count {
			return fmt.Errorf("obs: histogram %s: +Inf bucket %v != _count %v", f.Name, g.inf, g.count)
		}
		prev := 0.0
		for i, c := range g.cum {
			if i > 0 && g.les[i] <= g.les[i-1] {
				return fmt.Errorf("obs: histogram %s: le bounds not increasing", f.Name)
			}
			if c < prev {
				return fmt.Errorf("obs: histogram %s: cumulative bucket counts decrease", f.Name)
			}
			prev = c
		}
		if g.inf < prev {
			return fmt.Errorf("obs: histogram %s: +Inf bucket below last finite bucket", f.Name)
		}
	}
	return nil
}

// Value returns the value of the series with the given name and exact
// label set. For histograms pass the full series name (name_sum,
// name_count, or name_bucket with an le label).
func (s *Scrape) Value(series string, labels map[string]string) (float64, bool) {
	if labels == nil {
		labels = map[string]string{}
	}
	for _, f := range s.Families {
		if !sampleBelongs(f, series) {
			continue
		}
		for _, sm := range f.Samples {
			if sm.Name == series && labelsEqual(sm.Labels, labels) {
				return sm.Value, true
			}
		}
	}
	return 0, false
}

// HistBuckets returns the finite bucket bounds and cumulative counts
// for histogram `name` restricted to the given non-le label set. The
// +Inf bucket is appended as the final entry of cum, so cum has one
// more entry than les.
func (s *Scrape) HistBuckets(name string, labels map[string]string) (les, cum []float64, ok bool) {
	if labels == nil {
		labels = map[string]string{}
	}
	f := s.Families[name]
	if f == nil || f.Type != "histogram" {
		return nil, nil, false
	}
	type entry struct {
		le  float64
		cum float64
	}
	var entries []entry
	var inf float64
	var hasInf bool
	for _, sm := range f.Samples {
		if sm.Name != name+"_bucket" || !labelsEqual(labelsWithoutLe(sm.Labels), labels) {
			continue
		}
		le := sm.Labels["le"]
		if le == "+Inf" {
			inf, hasInf = sm.Value, true
			continue
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return nil, nil, false
		}
		entries = append(entries, entry{bound, sm.Value})
	}
	if !hasInf {
		return nil, nil, false
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].le < entries[j].le })
	for _, e := range entries {
		les = append(les, e.le)
		cum = append(cum, e.cum)
	}
	cum = append(cum, inf)
	return les, cum, true
}

// QuantileFromBuckets estimates quantile q (in [0,1]) from cumulative
// histogram buckets: les are the finite upper bounds, cum the matching
// cumulative counts with the +Inf bucket appended last (as returned by
// HistBuckets; callers computing a delta between two scrapes subtract
// element-wise first). Linear interpolation within the landing bucket;
// observations in the +Inf bucket clamp to the last finite bound.
// Returns 0 when the histogram is empty.
func QuantileFromBuckets(les, cum []float64, q float64) float64 {
	if len(cum) == 0 || len(cum) != len(les)+1 {
		return 0
	}
	total := cum[len(cum)-1]
	if total <= 0 {
		return 0
	}
	rank := q * total
	lower := 0.0
	prev := 0.0
	for i, bound := range les {
		if cum[i] >= rank {
			in := cum[i] - prev
			if in <= 0 {
				return bound
			}
			return lower + (bound-lower)*(rank-prev)/in
		}
		lower, prev = bound, cum[i]
	}
	if len(les) == 0 {
		return 0
	}
	return les[len(les)-1] // landed in +Inf: clamp to last finite bound
}
