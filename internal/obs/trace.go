package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed step inside a solve trace. Node is the GHD node id
// for per-node exec spans and -1 for request-phase spans
// (canonicalize, cache, admission, bind, exec).
type Span struct {
	Name  string `json:"name"`
	Node  int    `json:"node"`
	DurNS int64  `json:"dur_ns"`
}

// Trace is one recorded solve: the request phases in order plus one
// span per GHD node, as measured by the exec layer's cost vector.
type Trace struct {
	ID          uint64    `json:"id"`
	Time        time.Time `json:"time"`
	Semiring    string    `json:"semiring"`
	Fingerprint string    `json:"fingerprint,omitempty"`
	CacheHit    bool      `json:"cache_hit"`
	Fallback    bool      `json:"fallback,omitempty"`
	Batch       bool      `json:"batch,omitempty"`
	Err         string    `json:"err,omitempty"`
	TotalNS     int64     `json:"total_ns"`
	Spans       []Span    `json:"spans"`
}

// Tracer keeps the N most recent traces in a fixed ring buffer.
// Recording is O(1) amortized and never blocks a reader for long; a
// nil *Tracer is valid and drops everything, so instrumented code does
// not need nil checks at call sites.
type Tracer struct {
	seq atomic.Uint64
	mu  sync.Mutex
	buf []Trace
	n   uint64 // total traces ever recorded
}

// NewTracer returns a tracer retaining the last `capacity` traces
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]Trace, capacity)}
}

// Record stores tr in the ring, assigning its ID. No-op on a nil
// tracer.
func (t *Tracer) Record(tr Trace) {
	if t == nil {
		return
	}
	tr.ID = t.seq.Add(1)
	t.mu.Lock()
	t.buf[t.n%uint64(len(t.buf))] = tr
	t.n++
	t.mu.Unlock()
}

// Recent returns up to n traces, newest first. A nil tracer returns
// nil.
func (t *Tracer) Recent(n int) []Trace {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	have := t.n
	if have > uint64(len(t.buf)) {
		have = uint64(len(t.buf))
	}
	if uint64(n) < have {
		have = uint64(n)
	}
	out := make([]Trace, 0, have)
	for i := uint64(0); i < have; i++ {
		idx := (t.n - 1 - i) % uint64(len(t.buf))
		out = append(out, t.buf[idx])
	}
	return out
}

// Len returns the number of traces currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n > uint64(len(t.buf)) {
		return len(t.buf)
	}
	return int(t.n)
}
