// Package obs is the repository's dependency-free observability layer:
// an atomic metrics registry with Prometheus text exposition, a strict
// exposition parser (shared by tests and faqload's /metrics scraping),
// a bounded-ring solve tracer, and a runtime/metrics collector. The
// offline build has no module cache, so — like internal/lint hand-rolled
// its go/analysis — this package hand-rolls the metric primitives on
// sync/atomic.
//
// Design constraints, in order:
//
//   - The sample hot path is one atomic add with zero allocations.
//     Labelled metrics are pre-bound: Vec.With is called once at
//     construction time and returns a child handle; kernels and exec
//     tasks only ever touch the handle.
//   - Every series is monotone per-counter under concurrent scrape:
//     values are single atomic words, so a scrape observes each counter
//     at some point in its (monotone) history. Cross-counter and
//     bucket/sum consistency is deliberately not promised — that would
//     need a lock on the hot path.
//   - Exposition output is deterministic: families sorted by name,
//     children sorted by label values, so golden tests are stable.
//
// All values are int64. Durations are observed in nanoseconds and the
// metric name carries the unit (`*_ns`); this keeps the hot path free
// of float CAS loops.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

type kind uint8

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds metric families. The zero value is not usable; use
// NewRegistry. Registration is idempotent in the fault.Register style:
// re-registering an identical (name, kind, help, buckets, labels)
// family returns the existing one, so several Service instances can
// share one registry; a mismatched re-registration panics (programmer
// error, caught at init and statically by the metricreg analyzer).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

var std = NewRegistry()

// Default is the process-global registry. Package-level instrumentation
// (exec, plan, fault, delta) registers here; per-engine metrics live on
// the engine's own registry and both are written by faqd's /metrics.
func Default() *Registry { return std }

// family is one named metric with a fixed label schema and a set of
// label-value children.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []int64 // histogram upper bounds, strictly increasing; +Inf implicit

	mu       sync.Mutex
	children map[string]*child
}

// child is the value cell for one label combination. Counters and
// gauges use val; histograms use counts (len(buckets)+1, last bucket is
// the +Inf overflow) and sum.
type child struct {
	values []string
	val    atomic.Int64
	counts []atomic.Int64
	sum    atomic.Int64
}

const labelSep = "\x1f"

func (f *family) get(values []string) *child {
	if len(values) != len(f.labels) {
		mustRegister(false, "obs: metric "+f.name+" bound with wrong label count")
	}
	key := ""
	for i, v := range values {
		if i > 0 {
			key += labelSep
		}
		key += v
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := &child{values: append([]string(nil), values...)}
	if f.kind == histogramKind {
		c.counts = make([]atomic.Int64, len(f.buckets)+1)
	}
	f.children[key] = c
	return c
}

// mustRegister is the registry's single panic site: metric registration
// and binding mistakes are programmer errors caught at init (and
// statically by the metricreg analyzer), not runtime conditions.
func mustRegister(ok bool, msg string) {
	if !ok {
		panic(msg)
	}
}

func (r *Registry) register(name, help string, k kind, buckets []int64, labels []string) *family {
	mustRegister(validMetricName(name), "obs: invalid metric name "+name)
	mustRegister(help != "", "obs: metric "+name+" registered with empty help")
	for _, l := range labels {
		mustRegister(validLabelName(l), "obs: metric "+name+" has invalid label name "+l)
	}
	for i := 1; i < len(buckets); i++ {
		mustRegister(buckets[i] > buckets[i-1], "obs: metric "+name+" buckets not strictly increasing")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		mustRegister(f.kind == k && f.help == help &&
			equalStrings(f.labels, labels) && equalInt64s(f.buckets, buckets),
			"obs: metric "+name+" re-registered with a different schema")
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     k,
		labels:   append([]string(nil), labels...),
		buckets:  append([]int64(nil), buckets...),
		children: make(map[string]*child),
	}
	r.fams[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// validMetricName reports whether name matches the Prometheus metric
// name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(name string) bool {
	if name == "" || name == "le" { // le is reserved for histogram buckets
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// Counter is a monotonically increasing int64.
type Counter struct{ c *child }

// Add adds delta to the counter. Negative deltas are the caller's bug;
// they are not checked on the hot path.
func (c *Counter) Add(delta int64) { c.c.val.Add(delta) }

// Inc adds one.
func (c *Counter) Inc() { c.c.val.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.c.val.Load() }

// Gauge is an int64 that can go up and down.
type Gauge struct{ g *child }

// Set stores v.
func (g *Gauge) Set(v int64) { g.g.val.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.g.val.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.g.val.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.g.val.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.g.val.Load() }

// Histogram counts observations into fixed buckets. Observe is a
// linear scan over the (small) bucket array plus two atomic adds —
// zero allocations.
type Histogram struct {
	h       *child
	buckets []int64
}

// Observe records v into its bucket and the sum.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.buckets) && v > h.buckets[i] {
		i++
	}
	h.h.counts[i].Add(1)
	h.h.sum.Add(v)
}

// ObserveSince observes the elapsed nanoseconds since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Nanoseconds()) }

// HistSnapshot is a point-in-time copy of a histogram child. Counts are
// per-bucket (non-cumulative); Counts[len(Buckets)] is the +Inf
// overflow bucket.
type HistSnapshot struct {
	Buckets []int64
	Counts  []int64
	Count   int64
	Sum     int64
}

// Snapshot copies the histogram's current state. Each bucket counter is
// monotone; the set of loads is not atomic as a group.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Buckets: h.buckets, Counts: make([]int64, len(h.h.counts))}
	for i := range h.h.counts {
		c := h.h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.h.sum.Load()
	return s
}

// CounterVec is a counter family with labels. With pre-binds a child;
// call it at construction time, never per-sample.
type CounterVec struct{ f *family }

// With returns the child counter for the given label values,
// creating it on first use. Idempotent: same values, same child.
func (v *CounterVec) With(values ...string) *Counter { return &Counter{c: v.f.get(values)} }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return &Gauge{g: v.f.get(values)} }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{h: v.f.get(values), buckets: v.f.buckets}
}

// NewCounter registers (or idempotently returns) an unlabelled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(name, help, counterKind, nil, nil)
	return &Counter{c: f.get(nil)}
}

// NewGauge registers an unlabelled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(name, help, gaugeKind, nil, nil)
	return &Gauge{g: f.get(nil)}
}

// NewHistogram registers an unlabelled histogram with the given
// strictly increasing upper bounds (+Inf is implicit).
func (r *Registry) NewHistogram(name, help string, buckets []int64) *Histogram {
	f := r.register(name, help, histogramKind, buckets, nil)
	return &Histogram{h: f.get(nil), buckets: f.buckets}
}

// NewCounterVec registers a labelled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, counterKind, nil, labels)}
}

// NewGaugeVec registers a labelled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, gaugeKind, nil, labels)}
}

// NewHistogramVec registers a labelled histogram family.
func (r *Registry) NewHistogramVec(name, help string, buckets []int64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, histogramKind, buckets, labels)}
}

// DurationBucketsNS is the default latency bucket layout: 10µs to 10s,
// roughly ×2.5 per step, in nanoseconds.
var DurationBucketsNS = []int64{
	10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000, 10_000_000, 25_000_000, 50_000_000,
	100_000_000, 250_000_000, 500_000_000, 1_000_000_000,
	2_500_000_000, 10_000_000_000,
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedChildren snapshots a family's children ordered by label values.
func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	kids := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		kids = append(kids, c)
	}
	f.mu.Unlock()
	sort.Slice(kids, func(i, j int) bool {
		a, b := kids[i].values, kids[j].values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return kids
}
