package obs

import (
	"fmt"
	"testing"
	"time"
)

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Trace{Semiring: fmt.Sprintf("s%d", i), Time: time.Unix(int64(i), 0)})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	got := tr.Recent(10)
	if len(got) != 4 {
		t.Fatalf("Recent returned %d traces, want 4", len(got))
	}
	for i, want := range []string{"s9", "s8", "s7", "s6"} {
		if got[i].Semiring != want {
			t.Fatalf("Recent[%d] = %s, want %s (newest first)", i, got[i].Semiring, want)
		}
	}
	if got[0].ID != 10 {
		t.Fatalf("IDs should be assigned sequentially, newest = %d", got[0].ID)
	}
	if sub := tr.Recent(2); len(sub) != 2 || sub[0].Semiring != "s9" {
		t.Fatalf("Recent(2) = %v", sub)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(Trace{Semiring: "x"}) // must not panic
	if tr.Recent(5) != nil || tr.Len() != 0 {
		t.Fatal("nil tracer must drop everything")
	}
}

func TestTracerPartialFill(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Trace{Semiring: "a"})
	tr.Record(Trace{Semiring: "b"})
	got := tr.Recent(100)
	if len(got) != 2 || got[0].Semiring != "b" || got[1].Semiring != "a" {
		t.Fatalf("partial ring Recent = %v", got)
	}
}
